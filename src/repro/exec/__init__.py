"""Query execution: scans, hash tables, sorting, and the paper's joins.

Section 5 of the paper compares four pointer-based algorithms for the
tree query

    select f(p, pa)
    from p in Providers, pa in p.clients
    where pa.mrn < k1 and p.upin < k2

* **NL** — parent-to-child navigation,
* **NOJOIN** — child-to-parent navigation ("the join is hidden within
  the navigation pattern"),
* **PHJ** — hash the parents and join,
* **CHJ** — hash the children and join (the paper's sequential-outer
  variation of Shekita & Carey's pointer-based hash join [14]).

We also implement the sort-merge pointer join the paper tried and
dropped, and the hybrid-hash variant it names as the obvious next step
but never tested, plus the Section 4 selection scans (standard scan,
unclustered index scan, *sorted* unclustered index scan — Figure 8).

Execution is pipelined: every algorithm is a pull-based batched
operator in :mod:`repro.exec.operators`, and the list-returning
functions here are drain wrappers kept for the benchmark harnesses.
"""

from repro.exec.hash_table import QueryHashTable, chj_table_bytes, phj_table_bytes
from repro.exec.joins import (
    ALGORITHMS,
    TreeJoinQuery,
    hash_children_join,
    hash_parents_join,
    hybrid_hash_parents_join,
    navigation_child_to_parent,
    navigation_parent_to_child,
    sort_merge_join,
)
from repro.exec.operators import (
    DEFAULT_BATCH_SIZE,
    Cursor,
    Operator,
    PipelineContext,
    PipelineStats,
)
from repro.exec.results import ResultBuilder
from repro.exec.scans import (
    SelectionResult,
    select_indexed,
    select_scan,
)
from repro.exec.sorter import sort_charged

__all__ = [
    "DEFAULT_BATCH_SIZE",
    "Cursor",
    "Operator",
    "PipelineContext",
    "PipelineStats",
    "QueryHashTable",
    "phj_table_bytes",
    "chj_table_bytes",
    "ResultBuilder",
    "sort_charged",
    "SelectionResult",
    "select_scan",
    "select_indexed",
    "TreeJoinQuery",
    "ALGORITHMS",
    "navigation_parent_to_child",
    "navigation_child_to_parent",
    "hash_parents_join",
    "hash_children_join",
    "sort_merge_join",
    "hybrid_hash_parents_join",
]
