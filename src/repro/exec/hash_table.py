"""Memory-accounted query hash tables.

Figure 10 of the paper approximates the hash-table sizes of PHJ and CHJ
and predicts where swapping starts.  Reverse-engineering its numbers
gives the exact size model:

* **PHJ**: 64 bytes per *selected parent* (key + parent information),
* **CHJ**: 60 bytes per parent *in the domain* (the bucket directory is
  allocated over all parents) plus 8 bytes per selected child.

(Check: 10⁶ providers at 90% → 0.9 × 10⁶ × 64 B = 57.6 MB, Figure 10's
PHJ row; 60 MB + 2.7 × 10⁶ × 8 B = 81.6 MB, its last CHJ row.)

When the table outgrows the query memory budget the OS pages it; every
subsequent insert or probe touches a random table page, so the *expected*
penalty per operation is ``swap_fault_ms`` times the swapped-out
fraction.  That expected cost is charged deterministically — no RNG in
the measured path.
"""

from __future__ import annotations

from typing import Iterable

from repro.simtime import Bucket, CostParams, CounterSet, SimClock

#: Bytes per selected parent in a PHJ table (key + information).
PHJ_ENTRY_BYTES = 64
#: Bytes per domain parent in a CHJ table (preallocated bucket).
CHJ_BUCKET_BYTES = 60
#: Bytes per selected child payload in a CHJ table.
CHJ_CHILD_BYTES = 8


def phj_table_bytes(selected_parents: int) -> int:
    """Figure 10's size model for the hash-the-parents table."""
    return selected_parents * PHJ_ENTRY_BYTES


def chj_table_bytes(domain_parents: int, selected_children: int) -> int:
    """Figure 10's size model for the hash-the-children table.

    This is the paper's *approximation* — it charges a bucket for every
    parent in the domain.  The running table (below) only materializes
    buckets that receive children, which is why the paper's measurements
    show CHJ behaving well at low child selectivity in the 1:3 case even
    though Figure 10 declares its table "too large ... whatever the
    selectivity".
    """
    return domain_parents * CHJ_BUCKET_BYTES + selected_children * CHJ_CHILD_BYTES


class QueryHashTable:
    """A hash table whose memory footprint is modeled explicitly."""

    def __init__(
        self,
        clock: SimClock,
        params: CostParams,
        counters: CounterSet,
        entry_bytes: int,
        fixed_bytes: int = 0,
        bucket_bytes: int = 0,
        budget_bytes: int | None = None,
    ):
        if entry_bytes < 0 or fixed_bytes < 0 or bucket_bytes < 0:
            raise ValueError("entry/fixed/bucket bytes must be non-negative")
        self.clock = clock
        self.params = params
        self.counters = counters
        self.entry_bytes = entry_bytes
        self.fixed_bytes = fixed_bytes
        self.bucket_bytes = bucket_bytes
        self.budget_bytes = (
            params.memory.query_memory_bytes if budget_bytes is None else budget_bytes
        )
        self._table: dict[object, list[object]] = {}
        self._entries = 0
        self._swap_accum = 0.0

    # -- size / swap model ------------------------------------------------

    @property
    def table_bytes(self) -> int:
        """Fixed part + per-entry payload + one bucket header per
        *distinct* key (buckets materialize lazily)."""
        return (
            self.fixed_bytes
            + self._entries * self.entry_bytes
            + len(self._table) * self.bucket_bytes
        )

    @property
    def entries(self) -> int:
        return self._entries

    @property
    def swapped_fraction(self) -> float:
        """Fraction of the table currently paged out."""
        size = self.table_bytes
        if size <= self.budget_bytes or size == 0:
            return 0.0
        return (size - self.budget_bytes) / size

    def _charge_touch(self, base_us: float) -> None:
        self.clock.charge_us(Bucket.CPU, base_us)
        fraction = self.swapped_fraction
        if fraction > 0.0:
            self.clock.charge_ms(Bucket.SWAP, self.params.swap_fault_ms * fraction)
            self._swap_accum += fraction
            faults = int(self._swap_accum)
            if faults:
                self.counters.swap_faults += faults
                self._swap_accum -= faults

    # -- operations -----------------------------------------------------

    def insert(self, key: object, payload: object) -> None:
        self._entries += 1
        self._charge_touch(self.params.hash_insert_us)
        bucket = self._table.get(key)
        if bucket is None:
            self._table[key] = [payload]
        else:
            bucket.append(payload)

    def probe(self, key: object) -> object | None:
        """First payload under ``key`` or ``None`` (PHJ keys are unique)."""
        self._charge_touch(self.params.hash_probe_us)
        bucket = self._table.get(key)
        return bucket[0] if bucket else None

    def probe_all(self, key: object) -> Iterable[object]:
        """Every payload under ``key`` (CHJ groups children per parent)."""
        self._charge_touch(self.params.hash_probe_us)
        return self._table.get(key, ())

    def __contains__(self, key: object) -> bool:
        return key in self._table

    def __len__(self) -> int:
        return len(self._table)
