"""Pull-based, batched operator trees — the execution pipeline.

See :mod:`repro.exec.operators.base` for the protocol and the cost
discipline that keeps streaming equivalent to the old materializing
executors, and docs/architecture.md ("Operator pipeline") for the
picture.
"""

from repro.exec.operators.base import (
    DEFAULT_BATCH_SIZE,
    SKIP,
    Cursor,
    Operator,
    PipelineContext,
    PipelineStats,
)
from repro.exec.operators.joins import (
    JOIN_OPERATORS,
    HashChildrenJoin,
    HashParentsJoin,
    HybridHashParentsJoin,
    NavigationChildToParent,
    NavigationParentToChild,
    SortMergeJoin,
    TreeJoinOperator,
    build_join,
    drain_algorithm,
)
from repro.exec.operators.scans import (
    CollectionScan,
    Fetch,
    IndexScan,
    build_select_indexed,
    build_select_scan,
)
from repro.exec.operators.transforms import (
    Distinct,
    FetchingAggregate,
    Filter,
    IndexOnlyAggregate,
    Limit,
    Map,
    Sort,
    finish_aggregate,
)

__all__ = [
    "DEFAULT_BATCH_SIZE",
    "SKIP",
    "Cursor",
    "Operator",
    "PipelineContext",
    "PipelineStats",
    "CollectionScan",
    "IndexScan",
    "Fetch",
    "build_select_scan",
    "build_select_indexed",
    "Filter",
    "Map",
    "Limit",
    "Distinct",
    "Sort",
    "IndexOnlyAggregate",
    "FetchingAggregate",
    "finish_aggregate",
    "TreeJoinOperator",
    "NavigationParentToChild",
    "NavigationChildToParent",
    "HashParentsJoin",
    "HashChildrenJoin",
    "SortMergeJoin",
    "HybridHashParentsJoin",
    "JOIN_OPERATORS",
    "build_join",
    "drain_algorithm",
]
