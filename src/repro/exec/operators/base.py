"""The operator protocol: pull-based, batched (Volcano-style) execution.

Every executor in this package is an :class:`Operator` with the
``open() / next_batch(n) / close()`` life cycle.  A query is a tree of
operators; the consumer pulls batches of up to ``n`` rows from the root
through a :class:`Cursor`, and each operator pulls from its inputs in
turn.  Nothing is materialized except what an algorithm genuinely has to
buffer (a sort's input, a hash-join's build side), so ``limit``/first-row
consumers can stop early and pay only for what they pulled.

Cost discipline (what keeps streaming equivalent to the old
materializing executors):

* **Charge order is preserved.**  The clock only sums, but the *page
  access order* feeds the LRU caches, so operators touch pages, handles
  and index leaves in exactly the order the materializing code did.
  Blocking prefixes (rid materialize + physical sort, hash builds) run
  in ``open()`` — which is also what makes time-to-first-row honest.
* **No handle crosses a batch boundary.**  Every
  :meth:`~repro.objects.manager.ObjectManager.borrow` bracket completes
  within the production of a single row (or within ``open()``), so an
  early ``close()`` can never leak a handle — the simlint PAIR rule
  holds by construction.
* **Result rows are charged as they are emitted** (the
  :class:`~repro.exec.results.ResultBuilder` per-element price), so a
  drained pipeline charges exactly what the list builders charged, and
  an abandoned one charges less.

Memory accounting: :class:`PipelineStats.peak_rows` is the high-water
mark of *rows* alive in the pipeline — completed batches in flight plus
explicitly registered row buffers (a sort's input, CHJ's pending
matches).  Rid tables and join-side index entries are not rows; their
memory pressure is already modeled by the sort/spill charges.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.objects.database import Database
from repro.simtime import Bucket

#: Default rows per ``next_batch`` pull.  See docs/pipeline.md for how
#: to choose: bigger batches amortize per-batch overhead (scheduler
#: yields, Python call frames), smaller ones cut time-to-first-row and
#: peak live rows.
DEFAULT_BATCH_SIZE = 256

#: Sentinel a row function returns to drop the current input.
SKIP = object()


@dataclass
class PipelineStats:
    """Per-query pipeline instrumentation."""

    #: Simulated seconds from cursor open to the first emitted row
    #: (``None`` until a row is produced — and forever, for empty
    #: results).
    first_row_s: float | None = None
    #: High-water mark of live rows buffered across the operator tree.
    peak_rows: int = 0
    #: Rows emitted by the root so far.
    rows: int = 0
    #: Batches emitted by the root so far.
    batches: int = 0

    @property
    def first_row_ms(self) -> float:
        return 0.0 if self.first_row_s is None else self.first_row_s * 1e3


class PipelineContext:
    """Shared state of one operator tree: the database and the stats."""

    def __init__(self, db: Database):
        self.db = db
        self.stats = PipelineStats()
        self._live_rows = 0
        self._open_s: float | None = None

    # -- live-row accounting -------------------------------------------

    def note_buffered(self, n: int) -> None:
        """``n`` rows became live (an emitted batch, a sort buffer)."""
        self._live_rows += n
        if self._live_rows > self.stats.peak_rows:
            self.stats.peak_rows = self._live_rows

    def note_released(self, n: int) -> None:
        """``n`` previously counted rows were consumed or dropped."""
        self._live_rows -= n

    @property
    def live_rows(self) -> int:
        return self._live_rows

    # -- charging -------------------------------------------------------

    def charge_result(self, transactional: bool = True) -> None:
        """Charge one emitted result row (the ResultBuilder price)."""
        params = self.db.params
        us = (
            params.result_append_txn_us
            if transactional
            else params.result_append_us
        )
        self.db.clock.charge_us(Bucket.RESULT, us)

    # -- first-row bookkeeping (driven by the Cursor) -------------------

    def mark_open(self) -> None:
        if self._open_s is None:
            self._open_s = self.db.clock.elapsed_s

    def mark_rows(self, n: int) -> None:
        if n and self.stats.first_row_s is None:
            opened = self._open_s if self._open_s is not None else 0.0
            self.stats.first_row_s = self.db.clock.elapsed_s - opened
        self.stats.rows += n
        self.stats.batches += 1


class Operator:
    """One node of a pull-based operator tree.

    Subclasses implement ``_open`` / ``_next`` / ``_close`` and
    ``children``; the public methods add idempotent state handling and
    live-row accounting.  ``next_batch(n)`` returns at most ``n`` rows;
    an empty list means the operator is exhausted (operators keep
    pulling internally until they have at least one row or their inputs
    are dry, so a non-empty pipeline never yields a spurious ``[]``).
    """

    def __init__(self, ctx: PipelineContext):
        self.ctx = ctx
        self._emitted = 0       # rows of our last batch, still live
        self._opened = False
        self._closed = False

    # -- protocol -------------------------------------------------------

    def open(self) -> None:
        if self._opened:
            return
        self._opened = True
        for child in self.children():
            child.open()
        self._open()

    def next_batch(self, n: int) -> list:
        if not self._opened or self._closed:
            raise RuntimeError(
                f"{type(self).__name__}.next_batch outside open/close"
            )
        # The consumer asking for more is done with our previous batch.
        self.ctx.note_released(self._emitted)
        self._emitted = 0
        batch = self._next(n)
        self._emitted = len(batch)
        self.ctx.note_buffered(self._emitted)
        return batch

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self.ctx.note_released(self._emitted)
        self._emitted = 0
        try:
            self._close()
        finally:
            for child in self.children():
                child.close()

    # -- hooks ----------------------------------------------------------

    def children(self) -> tuple["Operator", ...]:
        return ()

    def _open(self) -> None:
        pass

    def _next(self, n: int) -> list:
        raise NotImplementedError

    def _close(self) -> None:
        pass

    # -- introspection --------------------------------------------------

    @property
    def depth(self) -> int:
        """Height of this operator tree (1 for a leaf)."""
        return 1 + max((c.depth for c in self.children()), default=0)


class Cursor:
    """Consumer facade over a root operator.

    Iterate it for rows, or call :meth:`batches` for batch-at-a-time
    consumption (the service layer yields the scheduler baton between
    batches).  Closing is automatic — at exhaustion, on abandonment of
    the generator, or via the context manager — and idempotent.
    """

    def __init__(
        self,
        ctx: PipelineContext,
        root: Operator,
        batch_size: int = DEFAULT_BATCH_SIZE,
    ):
        if batch_size < 1:
            raise ValueError("batch_size must be at least 1")
        self.ctx = ctx
        self.root = root
        self.batch_size = batch_size
        #: Optional hook fired exactly once when the cursor closes
        #: (exhaustion, abandonment, or explicit close) — consumers
        #: fold the final stats into their metrics here.
        self.on_close = None
        self._on_close_fired = False

    @property
    def stats(self) -> PipelineStats:
        return self.ctx.stats

    def batches(self):
        """Yield non-empty batches until the pipeline is exhausted."""
        self.ctx.mark_open()
        self.root.open()
        try:
            while True:
                batch = self.root.next_batch(self.batch_size)
                if not batch:
                    break
                self.ctx.mark_rows(len(batch))
                yield batch
        finally:
            self.close()

    def __iter__(self):
        for batch in self.batches():
            yield from batch

    def drain(self) -> list:
        """Pull everything; returns the full row list.  Runs inside
        ``with self`` so an abort mid-drain (cancellation, budget,
        deadlock) still closes the tree and fires ``on_close``."""
        rows: list = []
        with self:
            for batch in self.batches():
                rows.extend(batch)
        return rows

    def close(self) -> None:
        self.root.close()
        if self.on_close is not None and not self._on_close_fired:
            self._on_close_fired = True
            self.on_close()

    def __enter__(self) -> "Cursor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
