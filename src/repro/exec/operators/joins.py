"""The Section 5 tree-join algorithms as streaming operators.

Each operator evaluates one :class:`~repro.exec.joins.TreeJoinQuery` and
emits ``(parent_value, child_value)`` rows in batches.  Blocking
prefixes — the rid-sorted index scans, hash builds, SMJ's sorts, the
hybrid join's spill bookkeeping — run in ``open()``; the probe/navigate
side streams.  Fully drained, every operator charges exactly the
simulated time (and touches pages in exactly the order) of its
materializing ancestor in ``exec/joins.py``.

One deliberate deviation, cost-neutral by construction: NL's legacy loop
held the parent handle open while navigating its children.  The
streaming operator reads both parent attributes and *unreferences the
parent before the child loop*, so no handle spans a batch boundary.
Handle charges are per get/unreference call and NL never revisits a rid
(each parent is borrowed once; each child belongs to exactly one
parent), so the charge totals — and the page access order — are
unchanged; only the live-handle high-water mark drops from 2 to 1.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.exec.hash_table import (
    CHJ_BUCKET_BYTES,
    CHJ_CHILD_BYTES,
    QueryHashTable,
    phj_table_bytes,
)
from repro.exec.operators.base import (
    DEFAULT_BATCH_SIZE,
    Cursor,
    Operator,
    PipelineContext,
)
from repro.exec.sorter import sort_charged
from repro.simtime import Bucket
from repro.units import pages_for_bytes

if TYPE_CHECKING:  # runtime import would cycle: exec.joins wraps us
    from repro.exec.joins import TreeJoinQuery


class TreeJoinOperator(Operator):
    """Common plumbing: the bound query and its database."""

    def __init__(self, ctx: PipelineContext, q: "TreeJoinQuery"):
        super().__init__(ctx)
        self.q = q

    @property
    def db(self):
        return self.q.db

    def _charge_row(self) -> None:
        self.ctx.charge_result(self.q.transactional_result)


class NavigationParentToChild(TreeJoinOperator):
    """**NL** — parent-to-child pure navigation, streaming."""

    def _open(self) -> None:
        self._parents = self.q.selected_parents()
        self._parent_value: object = None
        self._children = iter(())

    def _next(self, n: int) -> list:
        q, db, om = self.q, self.db, self.db.manager
        out: list = []
        while len(out) < n:
            child_rid = next(self._children, None)
            if child_rid is None:
                entry = next(self._parents, None)
                if entry is None:
                    break
                with om.borrow(entry.rid) as parent:
                    self._parent_value = om.get_attr(parent, q.parent_project)
                    children = om.get_attr(parent, q.parent_set)
                self._children = db.iter_set_rids(children)
                continue
            with om.borrow(child_rid) as child:
                key = om.get_attr(child, q.child_key)
                db.clock.charge_us(Bucket.CPU, db.params.predicate_us)
                if key < q.child_high:  # type: ignore[operator]
                    row = (self._parent_value, om.get_attr(child, q.child_project))
                    self._charge_row()
                    out.append(row)
        return out

    def _close(self) -> None:
        self._parents = iter(())
        self._children = iter(())


class NavigationChildToParent(TreeJoinOperator):
    """**NOJOIN** — child-to-parent pure navigation, streaming."""

    def _open(self) -> None:
        self._children = self.q.selected_children()

    def _next(self, n: int) -> list:
        q, db, om = self.q, self.db, self.db.manager
        out: list = []
        while len(out) < n:
            entry = next(self._children, None)
            if entry is None:
                break
            with om.borrow(entry.rid) as child:
                parent_rid = om.get_attr(child, q.child_ref)
                if parent_rid is not None:
                    with om.borrow(parent_rid) as parent:
                        key = om.get_attr(parent, q.parent_key)
                        db.clock.charge_us(Bucket.CPU, db.params.predicate_us)
                        if key < q.parent_high:  # type: ignore[operator]
                            row = (
                                om.get_attr(parent, q.parent_project),
                                om.get_attr(child, q.child_project),
                            )
                            self._charge_row()
                            out.append(row)
        return out

    def _close(self) -> None:
        self._children = iter(())


class HashParentsJoin(TreeJoinOperator):
    """**PHJ** — hash the parents (build in ``open``), probe with the
    children (streamed)."""

    def _open(self) -> None:
        db, om, q = self.db, self.db.manager, self.q
        self._table = QueryHashTable(
            db.clock, db.params, db.counters, entry_bytes=phj_table_bytes(1)
        )
        for entry in q.selected_parents():
            with om.borrow(entry.rid) as parent:
                self._table.insert(entry.rid, om.get_attr(parent, q.parent_project))
        self._children = q.selected_children()

    def _next(self, n: int) -> list:
        q, om = self.q, self.db.manager
        out: list = []
        while len(out) < n:
            entry = next(self._children, None)
            if entry is None:
                break
            with om.borrow(entry.rid) as child:
                parent_rid = om.get_attr(child, q.child_ref)
                info = self._table.probe(parent_rid)
                if info is not None:
                    row = (info, om.get_attr(child, q.child_project))
                    self._charge_row()
                    out.append(row)
        return out

    def _close(self) -> None:
        self._table = None
        self._children = iter(())


class HashChildrenJoin(TreeJoinOperator):
    """**CHJ** — hash the children (build in ``open``), probe with the
    parents (streamed).

    A probed parent can match many children; matches that overflow the
    current batch wait in a pending queue (counted against
    ``peak_rows``) and are charged as they are emitted — which keeps the
    charge order identical, since the next parent is not probed until
    the queue drains.
    """

    def _open(self) -> None:
        db, om, q = self.db, self.db.manager, self.q
        self._table = QueryHashTable(
            db.clock,
            db.params,
            db.counters,
            entry_bytes=CHJ_CHILD_BYTES,
            bucket_bytes=CHJ_BUCKET_BYTES,
        )
        for entry in q.selected_children():
            with om.borrow(entry.rid) as child:
                self._table.insert(
                    om.get_attr(child, q.child_ref),
                    om.get_attr(child, q.child_project),
                )
        self._parents = q.selected_parents()
        self._pending: list = []

    def _next(self, n: int) -> list:
        q, om = self.q, self.db.manager
        out: list = []
        while len(out) < n:
            if self._pending:
                row = self._pending.pop(0)
                self.ctx.note_released(1)
                self._charge_row()
                out.append(row)
                continue
            entry = next(self._parents, None)
            if entry is None:
                break
            matches = self._table.probe_all(entry.rid)
            if not matches:
                continue
            with om.borrow(entry.rid) as parent:
                parent_value = om.get_attr(parent, q.parent_project)
            for child_value in matches:
                self._pending.append((parent_value, child_value))
                self.ctx.note_buffered(1)
        return out

    def _close(self) -> None:
        self.ctx.note_released(len(self._pending))
        self._pending = []
        self._table = None
        self._parents = iter(())


class SortMergeJoin(TreeJoinOperator):
    """Sort-merge pointer join — both sides materialized and sorted in
    ``open`` (the algorithm is blocking by nature), merge streamed.

    The child-pairs buffer carries projected values and counts against
    ``peak_rows``; the parent side is ``(rid, key)`` index entries —
    bookkeeping, like a rid table, and not counted.
    """

    def _open(self) -> None:
        db, om, q = self.db, self.db.manager, self.q
        child_pairs = []
        for entry in q.selected_children():
            with om.borrow(entry.rid) as child:
                parent_rid = om.get_attr(child, q.child_ref)
                if parent_rid is not None:
                    child_pairs.append(
                        (parent_rid, om.get_attr(child, q.child_project))
                    )
        self._child_pairs = sort_charged(
            child_pairs, db.clock, db.params, key=lambda p: p[0], bytes_per_item=16
        )
        self.ctx.note_buffered(len(self._child_pairs))

        parent_entries = [(entry.rid, entry.key) for entry in q.selected_parents()]
        self._parent_entries = sort_charged(
            parent_entries, db.clock, db.params, key=lambda p: p[0], bytes_per_item=16
        )
        self._p = 0          # next parent entry
        self._i = 0          # merge frontier in child_pairs
        self._group: tuple | None = None   # (parent_rid, parent_value, j)

    def _next(self, n: int) -> list:
        db, om, q = self.db, self.db.manager, self.q
        pairs, parents = self._child_pairs, self._parent_entries
        out: list = []
        while len(out) < n:
            if self._group is not None:
                parent_rid, parent_value, j = self._group
                if j < len(pairs) and pairs[j][0] == parent_rid:
                    db.clock.charge_us(Bucket.CPU, db.params.compare_us)
                    row = (parent_value, pairs[j][1])
                    self._charge_row()
                    out.append(row)
                    self._group = (parent_rid, parent_value, j + 1)
                    continue
                self._i = j
                self._group = None
            if self._p >= len(parents):
                break
            parent_rid = parents[self._p][0]
            self._p += 1
            while self._i < len(pairs) and pairs[self._i][0] < parent_rid:
                db.clock.charge_us(Bucket.CPU, db.params.compare_us)
                self._i += 1
            if self._i >= len(pairs):
                self._p = len(parents)
                break
            if pairs[self._i][0] != parent_rid:
                continue
            with om.borrow(parent_rid) as parent:
                parent_value = om.get_attr(parent, q.parent_project)
            self._group = (parent_rid, parent_value, self._i)
        return out

    def _close(self) -> None:
        self.ctx.note_released(len(self._child_pairs))
        self._child_pairs = []
        self._parent_entries = []


class HybridHashParentsJoin(TreeJoinOperator):
    """Hybrid-hash PHJ — spill bookkeeping up front, probes streamed.

    The spilled *probe* pages depend on how many children were actually
    probed, so that charge lands when the probe stream ends — at
    exhaustion, or on early close for the probes already made.
    """

    def _open(self) -> None:
        db, om, q = self.db, self.db.manager, self.q
        budget = db.params.memory.query_memory_bytes

        parents = []
        for entry in q.selected_parents():
            with om.borrow(entry.rid) as parent:
                parents.append((entry.rid, om.get_attr(parent, q.parent_project)))
        table_bytes = phj_table_bytes(len(parents))
        self._spill_fraction = 0.0
        if budget and table_bytes > budget:
            self._spill_fraction = (table_bytes - budget) / table_bytes

        spilled_build_pages = pages_for_bytes(
            int(table_bytes * self._spill_fraction)
        )
        self._charge_spill_pages(spilled_build_pages)

        self._table = QueryHashTable(
            db.clock,
            db.params,
            db.counters,
            entry_bytes=phj_table_bytes(1),
            budget_bytes=table_bytes,  # partitions always fit: no thrash
        )
        for parent_rid, value in parents:
            self._table.insert(parent_rid, value)

        self._children = q.selected_children()
        self._probe_bytes = 0
        self._spill_charged = False

    def _charge_spill_pages(self, pages: int) -> None:
        db = self.db
        for __ in range(pages):
            db.clock.charge_ms(Bucket.IO, db.params.page_write_ms)
            db.clock.charge_ms(Bucket.IO, db.params.page_read_ms)
            db.counters.disk_writes += 1
            db.counters.disk_reads += 1

    def _charge_probe_spill(self) -> None:
        if self._spill_charged:
            return
        self._spill_charged = True
        self._charge_spill_pages(pages_for_bytes(self._probe_bytes))

    def _next(self, n: int) -> list:
        q, om = self.q, self.db.manager
        out: list = []
        while len(out) < n:
            entry = next(self._children, None)
            if entry is None:
                self._charge_probe_spill()
                break
            with om.borrow(entry.rid) as child:
                parent_rid = om.get_attr(child, q.child_ref)
                self._probe_bytes += int(16 * self._spill_fraction)
                info = self._table.probe(parent_rid)
                if info is not None:
                    row = (info, om.get_attr(child, q.child_project))
                    self._charge_row()
                    out.append(row)
        return out

    def _close(self) -> None:
        self._charge_probe_spill()
        self._table = None
        self._children = iter(())


#: Operator classes by the paper's algorithm names (mirrors
#: ``exec.joins.ALGORITHMS``).
JOIN_OPERATORS: dict[str, type[TreeJoinOperator]] = {
    "NL": NavigationParentToChild,
    "NOJOIN": NavigationChildToParent,
    "PHJ": HashParentsJoin,
    "CHJ": HashChildrenJoin,
    "SMJ": SortMergeJoin,
    "PHJ-HYBRID": HybridHashParentsJoin,
}


def build_join(q: "TreeJoinQuery", algorithm: str) -> TreeJoinOperator:
    """Instantiate the named join operator over a fresh context."""
    return JOIN_OPERATORS[algorithm](PipelineContext(q.db), q)


def drain_algorithm(
    q: "TreeJoinQuery", algorithm: str, batch_size: int = DEFAULT_BATCH_SIZE
) -> list[tuple]:
    """Run the named algorithm to completion; the legacy list API."""
    op = build_join(q, algorithm)
    with Cursor(op.ctx, op, batch_size) as cursor:
        return cursor.drain()
