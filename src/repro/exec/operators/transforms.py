"""Row-transforming operators: filter, map, limit, distinct, sort,
aggregates.

``Sort`` is the one *blocking* operator here: it drains its input into a
buffer (registered against the pipeline's live-row high-water mark),
charges the same per-term ``n log n`` + spill prices the materializing
engine charged, and then streams the ordered rows out.  Everything else
is pipelined — in particular :class:`Limit` simply stops pulling, which
is what makes ``limit`` / first-row queries early-exit for free.
"""

from __future__ import annotations

from typing import Callable

from repro.exec.operators.base import (
    DEFAULT_BATCH_SIZE,
    Operator,
    PipelineContext,
)
from repro.exec.sorter import sort_charged
from repro.index.btree import BTreeIndex
from repro.simtime import Bucket


class Filter(Operator):
    """Keep rows satisfying a predicate, optionally charging CPU per
    row tested (0 by default — engine predicates charge inside their
    row functions, where the legacy code charged them)."""

    def __init__(
        self,
        ctx: PipelineContext,
        source: Operator,
        predicate: Callable[[object], bool],
        charge_us: float = 0.0,
    ):
        super().__init__(ctx)
        self.source = source
        self.predicate = predicate
        self.charge_us = charge_us

    def children(self) -> tuple[Operator, ...]:
        return (self.source,)

    def _next(self, n: int) -> list:
        db = self.ctx.db
        out: list = []
        while len(out) < n:
            batch = self.source.next_batch(n)
            if not batch:
                break
            for row in batch:
                if self.charge_us:
                    db.clock.charge_us(Bucket.CPU, self.charge_us)
                if self.predicate(row):
                    out.append(row)
        return out


class Map(Operator):
    """Apply a function to every row (projection, column flip)."""

    def __init__(self, ctx: PipelineContext, source: Operator, fn: Callable):
        super().__init__(ctx)
        self.source = source
        self.fn = fn

    def children(self) -> tuple[Operator, ...]:
        return (self.source,)

    def _next(self, n: int) -> list:
        return [self.fn(row) for row in self.source.next_batch(n)]


class Limit(Operator):
    """Emit at most ``limit`` rows, then stop pulling from below.

    The early exit is structural: once the quota is met this operator
    reports end-of-stream, the cursor closes the tree, and whatever the
    input would have scanned next is simply never charged.
    """

    def __init__(self, ctx: PipelineContext, source: Operator, limit: int):
        super().__init__(ctx)
        if limit < 0:
            raise ValueError("limit must be non-negative")
        self.source = source
        self.limit = limit
        self._remaining = limit

    def children(self) -> tuple[Operator, ...]:
        return (self.source,)

    def _next(self, n: int) -> list:
        if self._remaining <= 0:
            return []
        batch = self.source.next_batch(min(n, self._remaining))
        batch = batch[: self._remaining]
        self._remaining -= len(batch)
        return batch


class Distinct(Operator):
    """Drop duplicate rows, keeping first-seen order (the semantics of
    the legacy ``dict.fromkeys`` pass, charged identically: free)."""

    def __init__(self, ctx: PipelineContext, source: Operator):
        super().__init__(ctx)
        self.source = source
        self._seen: set = set()

    def children(self) -> tuple[Operator, ...]:
        return (self.source,)

    def _next(self, n: int) -> list:
        out: list = []
        while len(out) < n:
            batch = self.source.next_batch(n)
            if not batch:
                break
            for row in batch:
                if row not in self._seen:
                    self._seen.add(row)
                    out.append(row)
        return out

    def _close(self) -> None:
        self._seen = set()


class Sort(Operator):
    """Order-by over ``(key_tuple, row)`` pairs — blocking.

    Input rows are pairs of a sort-key tuple and the output row.  On the
    first pull the input is drained (the buffer counts against
    ``peak_rows``), then each order-by term is applied from the last to
    the first with a stable charged sort, reversing for descending
    terms — byte-identical to the engine's old ``_apply_order``.
    """

    def __init__(
        self,
        ctx: PipelineContext,
        source: Operator,
        order_by: tuple[tuple[str, bool], ...],
    ):
        super().__init__(ctx)
        self.source = source
        self.order_by = order_by
        self._rows: list = []
        self._pos = 0
        self._sorted = False

    def children(self) -> tuple[Operator, ...]:
        return (self.source,)

    def _drain_and_sort(self) -> None:
        db = self.ctx.db
        keyed: list = []
        while True:
            batch = self.source.next_batch(DEFAULT_BATCH_SIZE)
            if not batch:
                break
            keyed.extend(batch)
            self.ctx.note_buffered(len(batch))
        rows = keyed
        for position in range(len(self.order_by) - 1, -1, -1):
            __, descending = self.order_by[position]
            rows = sort_charged(
                rows,
                db.clock,
                db.params,
                key=lambda item, p=position: item[0][p],
            )
            if descending:
                rows = rows[::-1]
        self._rows = [row for __, row in rows]
        self._sorted = True

    def _next(self, n: int) -> list:
        if not self._sorted:
            self._drain_and_sort()
        batch = self._rows[self._pos : self._pos + n]
        self._pos += len(batch)
        self.ctx.note_released(len(batch))
        return batch

    def _close(self) -> None:
        self.ctx.note_released(len(self._rows) - self._pos)
        self._rows = []
        self._pos = 0


def finish_aggregate(
    func: str, count: int, total: float, lo: object | None, hi: object | None
) -> object:
    """Turn accumulated state into the aggregate's answer."""
    if func == "count":
        return count
    if func == "sum":
        return total
    if func == "avg":
        return total / count if count else None
    if func == "min":
        return lo
    return hi


class IndexOnlyAggregate(Operator):
    """count/sum/avg/min/max answered from index entries alone.

    A leaf operator: the whole answer comes from one range scan over
    ``(key, rid)`` entries, one comparison charged per entry, no object
    ever fetched.
    """

    def __init__(
        self,
        ctx: PipelineContext,
        index: BTreeIndex,
        low: object | None,
        high: object | None,
        include_low: bool,
        include_high: bool,
        func: str,
    ):
        super().__init__(ctx)
        self.index = index
        self.low = low
        self.high = high
        self.include_low = include_low
        self.include_high = include_high
        self.func = func
        self._done = False

    def _next(self, n: int) -> list:
        if self._done:
            return []
        self._done = True
        db = self.ctx.db
        count = 0
        total = 0.0
        lo: object | None = None
        hi: object | None = None
        for entry in self.index.range_scan(
            self.low, self.high, self.include_low, self.include_high
        ):
            db.clock.charge_us(Bucket.CPU, db.params.compare_us)
            count += 1
            if self.func != "count":
                key = entry.key
                total += key  # type: ignore[operator]
                lo = key if lo is None or key < lo else lo  # type: ignore[operator]
                hi = key if hi is None or key > hi else hi  # type: ignore[operator]
        return [finish_aggregate(self.func, count, total, lo, hi)]


class FetchingAggregate(Operator):
    """Aggregate that must look at the objects.

    Pulls rids from its source, borrows each object, applies the accept
    function (residual predicates, exists filters), and accumulates.
    Emits exactly one row.  No result-append charge — the legacy engine
    returned the scalar without a ResultBuilder, and so do we.
    """

    def __init__(
        self,
        ctx: PipelineContext,
        source: Operator,
        accept_fn: Callable,
        func: str,
        attr: str | None,
    ):
        super().__init__(ctx)
        self.source = source
        self.accept_fn = accept_fn
        self.func = func
        self.attr = attr
        self._done = False

    def children(self) -> tuple[Operator, ...]:
        return (self.source,)

    def _next(self, n: int) -> list:
        if self._done:
            return []
        self._done = True
        om = self.ctx.db.manager
        count = 0
        total = 0.0
        lo: object | None = None
        hi: object | None = None
        while True:
            batch = self.source.next_batch(n)
            if not batch:
                break
            for rid in batch:
                with om.borrow(rid) as handle:
                    if not self.accept_fn(om, handle):
                        continue
                    count += 1
                    if self.func != "count":
                        value = om.get_attr(handle, self.attr)  # type: ignore[arg-type]
                        total += value  # type: ignore[operator]
                        lo = value if lo is None or value < lo else lo  # type: ignore[operator]
                        hi = value if hi is None or value > hi else hi  # type: ignore[operator]
        return [finish_aggregate(self.func, count, total, lo, hi)]
