"""Scan-side operators: rid sources and the fetch that dereferences them.

These are the Figure 8 access paths as operators.  A rid source
(:class:`CollectionScan` or :class:`IndexScan`) emits record ids; a
:class:`Fetch` above it borrows one handle per rid, applies a row
function, and emits the surviving rows.  The module-level builders
assemble the same trees the legacy ``select_scan`` / ``select_indexed``
list builders hard-coded, with identical charge order.
"""

from __future__ import annotations

from itertools import islice
from typing import Callable

from repro.errors import RecordNotVisibleError
from repro.exec.operators.base import SKIP, Operator, PipelineContext
from repro.exec.sorter import sort_charged
from repro.index.btree import BTreeIndex
from repro.objects.database import Database, PersistentCollection
from repro.simtime import Bucket


class CollectionScan(Operator):
    """Emit every rid of a collection, in physical (creation) order."""

    def __init__(self, ctx: PipelineContext, collection: PersistentCollection):
        super().__init__(ctx)
        self.collection = collection
        self._iter = iter(())

    def _open(self) -> None:
        self._iter = iter(self.collection.iter_rids())

    def _next(self, n: int) -> list:
        return list(islice(self._iter, n))

    def _close(self) -> None:
        self._iter = iter(())


class IndexScan(Operator):
    """Emit the rids of a B+-tree range scan.

    The range scan runs (and charges its leaf I/O) in ``_open`` — the
    index produces its matches up front, exactly as the materializing
    code did.  With ``sorted_rids`` the rid table is additionally
    sorted by physical address (Figure 8, right).  The rid table is
    bookkeeping, not rows; its memory is modeled by the sort's spill
    charges, so it is not counted against ``peak_rows``.
    """

    def __init__(
        self,
        ctx: PipelineContext,
        index: BTreeIndex,
        low: object | None,
        high: object | None,
        include_low: bool = True,
        include_high: bool = True,
        sorted_rids: bool = False,
    ):
        super().__init__(ctx)
        self.index = index
        self.low = low
        self.high = high
        self.include_low = include_low
        self.include_high = include_high
        self.sorted_rids = sorted_rids
        self._rids: list = []
        self._pos = 0

    def _open(self) -> None:
        db = self.ctx.db
        self._rids = [
            entry.rid
            for entry in self.index.range_scan(
                self.low, self.high, self.include_low, self.include_high
            )
        ]
        if self.sorted_rids:
            self._rids = sort_charged(self._rids, db.clock, db.params)

    def _next(self, n: int) -> list:
        batch = self._rids[self._pos : self._pos + n]
        self._pos += len(batch)
        return batch

    def _close(self) -> None:
        self._rids = []


class Fetch(Operator):
    """Borrow one handle per input rid and apply a row function.

    ``row_fn(om, handle)`` returns the output row, or :data:`SKIP` to
    drop the object (a failed predicate).  Each surviving row is charged
    the ResultBuilder append price as it is emitted.  The handle bracket
    closes before the row leaves the operator — nothing is held across a
    batch boundary.
    """

    def __init__(
        self,
        ctx: PipelineContext,
        source: Operator,
        row_fn: Callable,
        transactional: bool = True,
    ):
        super().__init__(ctx)
        self.source = source
        self.row_fn = row_fn
        self.transactional = transactional
        self.scanned = 0
        #: Rids with no version visible at the reader's snapshot (objects
        #: created after an MVCC snapshot began) — skipped, not errors.
        self.not_visible = 0
        self._rids: list = []
        self._pos = 0

    def children(self) -> tuple[Operator, ...]:
        return (self.source,)

    def _next(self, n: int) -> list:
        om = self.ctx.db.manager
        out: list = []
        while len(out) < n:
            if self._pos >= len(self._rids):
                self._rids = self.source.next_batch(n)
                self._pos = 0
                if not self._rids:
                    break
            rid = self._rids[self._pos]
            self._pos += 1
            self.scanned += 1
            try:
                with om.borrow(rid) as handle:
                    row = self.row_fn(om, handle)
            except RecordNotVisibleError:
                self.not_visible += 1
                continue
            if row is not SKIP:
                self.ctx.charge_result(self.transactional)
                out.append(row)
        return out


# -- builders matching the legacy list executors --------------------------


def build_select_scan(
    db: Database,
    collection: PersistentCollection,
    attr: str,
    predicate: Callable[[object], bool],
    project: str,
    transactional: bool = True,
) -> Fetch:
    """Figure 8, left, as an operator tree: CollectionScan → Fetch."""
    ctx = PipelineContext(db)

    def row_fn(om, handle):
        value = om.get_attr(handle, attr)
        db.clock.charge_us(Bucket.CPU, db.params.predicate_us)
        if not predicate(value):
            return SKIP
        return om.get_attr(handle, project)

    return Fetch(ctx, CollectionScan(ctx, collection), row_fn, transactional)


def build_select_indexed(
    db: Database,
    index: BTreeIndex,
    low: object | None,
    high: object | None,
    project: str,
    sorted_rids: bool = False,
    include_low: bool = True,
    include_high: bool = True,
    transactional: bool = True,
) -> Fetch:
    """Figure 8, right (or the plain index scan): IndexScan → Fetch."""
    ctx = PipelineContext(db)

    def row_fn(om, handle):
        return om.get_attr(handle, project)

    source = IndexScan(
        ctx, index, low, high, include_low, include_high, sorted_rids
    )
    return Fetch(ctx, source, row_fn, transactional)
