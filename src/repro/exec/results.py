"""Result collection construction.

The paper measures result building explicitly: constructing a collection
of 1.8 million integers under standard transaction mode took ~1100
seconds (Section 4.2) — about 0.6 ms per element, because the result is
built "as if it could become persistent".  :class:`ResultBuilder` charges
that cost per appended element (or the cheap transient cost when the
caller opts out of transactional results).
"""

from __future__ import annotations

from repro.objects.database import Database
from repro.simtime import Bucket


class ResultBuilder:
    """Accumulates query results, charging per-element construction."""

    def __init__(self, db: Database, transactional: bool = True):
        self.db = db
        self.transactional = transactional
        self.rows: list[object] = []

    def append(self, row: object) -> None:
        params = self.db.params
        us = (
            params.result_append_txn_us
            if self.transactional
            else params.result_append_us
        )
        self.db.clock.charge_us(Bucket.RESULT, us)
        self.rows.append(row)

    def __len__(self) -> int:
        return len(self.rows)
