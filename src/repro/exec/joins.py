"""The paper's four tree-query algorithms, plus the two it points at.

All six evaluate the same query over a parent/child hierarchy::

    select [parent.P_ATTR, child.C_ATTR]
    from p in Parents, c in p.children
    where c.CHILD_KEY < k1 and p.PARENT_KEY < k2

on a database where parents carry a ``children`` ref-set and children a
back-reference.  The :class:`TreeJoinQuery` names the pieces, so the
algorithms work for any such schema (Derby doctors/patients, the XML
example, ...).

Conventions shared by all algorithms, following Section 5:

* both predicates are evaluated through *clustered* indexes whenever the
  algorithm's access pattern allows an index at all;
* hash tables store whatever ``f(p, pa)`` needs (here: one projected
  attribute), sized by Figure 10's model;
* results are built under standard transaction mode.

Since the pipeline refactor the algorithm bodies live in
:mod:`repro.exec.operators.joins` as streaming operators; the functions
below drain those operators and return the full row list, at identical
charged cost.  Streaming consumers go through the operator package (or
``OQLEngine.execute_iter``) directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.exec.operators.joins import drain_algorithm
from repro.exec.sorter import sort_charged
from repro.index.btree import BTreeIndex
from repro.objects.database import Database


@dataclass
class TreeJoinQuery:
    """One instance of the tree query, bound to a database."""

    db: Database
    parent_index: BTreeIndex        # parents by PARENT_KEY (clustered)
    child_index: BTreeIndex         # children by CHILD_KEY (clustered)
    parent_high: object             # PARENT_KEY < parent_high
    child_high: object              # CHILD_KEY < child_high
    n_parents: int                  # parent domain size (CHJ directory)
    parent_key: str = "upin"
    child_key: str = "mrn"
    child_ref: str = "primary_care_provider"
    parent_set: str = "clients"
    parent_project: str = "name"
    child_project: str = "age"
    transactional_result: bool = True

    # -- index scans both sides share ------------------------------------
    #
    # Both scans materialize the qualifying rids and *sort them by
    # physical address* before fetching — the paper's own Figure 8
    # technique, and the reason it can state that the hash joins "access
    # them in a sequential way" and that under NOJOIN "patients (the
    # large collection) are always accessed sequentially" even when the
    # key order does not match the physical layout (composition/random
    # organizations).

    def selected_parents(self):
        entries = list(
            self.parent_index.range_scan(None, self.parent_high, include_high=False)
        )
        entries = sort_charged(
            entries, self.db.clock, self.db.params, key=lambda e: e.rid
        )
        return iter(entries)

    def selected_children(self):
        entries = list(
            self.child_index.range_scan(None, self.child_high, include_high=False)
        )
        entries = sort_charged(
            entries, self.db.clock, self.db.params, key=lambda e: e.rid
        )
        return iter(entries)


JoinAlgorithm = Callable[[TreeJoinQuery], list[tuple]]


def navigation_parent_to_child(q: TreeJoinQuery) -> list[tuple]:
    """**NL** — parent-to-child pure navigation.

    Only the parent index is usable (children are reached through their
    parents), so the child predicate is tested on every child of every
    selected parent: the big handicap the paper calls out, since the
    child collection can be a thousand times larger.
    """
    return drain_algorithm(q, "NL")


def navigation_child_to_parent(q: TreeJoinQuery) -> list[tuple]:
    """**NOJOIN** — child-to-parent pure navigation.

    Uses the index of the *largest* collection, but may test the parent
    predicate once per child (up to 1,000 times per parent); "the join
    is hidden within the navigation pattern".
    """
    return drain_algorithm(q, "NOJOIN")


def hash_parents_join(q: TreeJoinQuery) -> list[tuple]:
    """**PHJ** — hash the parents, probe with the children.

    Both indexes apply and both collections are read sequentially; the
    table holds (parent id, parent information) per selected parent.
    """
    return drain_algorithm(q, "PHJ")


def hash_children_join(q: TreeJoinQuery) -> list[tuple]:
    """**CHJ** — hash the children by parent, probe with the parents.

    The paper's variation of the pointer-based join of Shekita & Carey
    [14]: because there is no hybrid hashing, the parent collection can
    be scanned *sequentially* instead of in hash order.  The price is a
    table holding the children — 3 to 1000 times more entries — over a
    bucket directory covering the whole parent domain (Figure 10).
    """
    return drain_algorithm(q, "CHJ")


def sort_merge_join(q: TreeJoinQuery) -> list[tuple]:
    """Sort-merge pointer join — the family the paper "started testing
    ... but they proved to be worse than hash-based ones and we dropped
    them".  Kept for the ablation benchmark.

    Children are reduced to (parent rid, projected value) pairs and
    sorted by parent rid; parents arrive rid-sorted from their clustered
    index scan; a merge pass pairs them up.
    """
    return drain_algorithm(q, "SMJ")


def hybrid_hash_parents_join(q: TreeJoinQuery) -> list[tuple]:
    """Hybrid-hash PHJ — the improvement the paper names but never ran
    ("we did not consider hybrid hashing [17] to optimize this").

    When the parent table would exceed the memory budget, the overflow
    fraction of both inputs is partitioned to disk and re-read, instead
    of letting the OS thrash: the swap penalty is replaced by sequential
    partition I/O, which is the entire point of hybrid hashing.
    """
    return drain_algorithm(q, "PHJ-HYBRID")


#: Registry used by the benchmark harness and the optimizer; the keys
#: are the paper's algorithm names.
ALGORITHMS: dict[str, JoinAlgorithm] = {
    "NL": navigation_parent_to_child,
    "NOJOIN": navigation_child_to_parent,
    "PHJ": hash_parents_join,
    "CHJ": hash_children_join,
    "SMJ": sort_merge_join,
    "PHJ-HYBRID": hybrid_hash_parents_join,
}
