"""The paper's four tree-query algorithms, plus the two it points at.

All six evaluate the same query over a parent/child hierarchy::

    select [parent.P_ATTR, child.C_ATTR]
    from p in Parents, c in p.children
    where c.CHILD_KEY < k1 and p.PARENT_KEY < k2

on a database where parents carry a ``children`` ref-set and children a
back-reference.  The :class:`TreeJoinQuery` names the pieces, so the
algorithms work for any such schema (Derby doctors/patients, the XML
example, ...).

Conventions shared by all algorithms, following Section 5:

* both predicates are evaluated through *clustered* indexes whenever the
  algorithm's access pattern allows an index at all;
* hash tables store whatever ``f(p, pa)`` needs (here: one projected
  attribute), sized by Figure 10's model;
* results are built under standard transaction mode.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.exec.hash_table import (
    CHJ_BUCKET_BYTES,
    CHJ_CHILD_BYTES,
    QueryHashTable,
    phj_table_bytes,
)
from repro.exec.results import ResultBuilder
from repro.exec.sorter import sort_charged
from repro.index.btree import BTreeIndex
from repro.objects.database import Database
from repro.simtime import Bucket
from repro.storage.rid import Rid
from repro.units import pages_for_bytes


@dataclass
class TreeJoinQuery:
    """One instance of the tree query, bound to a database."""

    db: Database
    parent_index: BTreeIndex        # parents by PARENT_KEY (clustered)
    child_index: BTreeIndex         # children by CHILD_KEY (clustered)
    parent_high: object             # PARENT_KEY < parent_high
    child_high: object              # CHILD_KEY < child_high
    n_parents: int                  # parent domain size (CHJ directory)
    parent_key: str = "upin"
    child_key: str = "mrn"
    child_ref: str = "primary_care_provider"
    parent_set: str = "clients"
    parent_project: str = "name"
    child_project: str = "age"
    transactional_result: bool = True

    # -- index scans both sides share ------------------------------------
    #
    # Both scans materialize the qualifying rids and *sort them by
    # physical address* before fetching — the paper's own Figure 8
    # technique, and the reason it can state that the hash joins "access
    # them in a sequential way" and that under NOJOIN "patients (the
    # large collection) are always accessed sequentially" even when the
    # key order does not match the physical layout (composition/random
    # organizations).

    def selected_parents(self):
        entries = list(
            self.parent_index.range_scan(None, self.parent_high, include_high=False)
        )
        entries = sort_charged(
            entries, self.db.clock, self.db.params, key=lambda e: e.rid
        )
        return iter(entries)

    def selected_children(self):
        entries = list(
            self.child_index.range_scan(None, self.child_high, include_high=False)
        )
        entries = sort_charged(
            entries, self.db.clock, self.db.params, key=lambda e: e.rid
        )
        return iter(entries)


JoinAlgorithm = Callable[[TreeJoinQuery], list[tuple]]


def navigation_parent_to_child(q: TreeJoinQuery) -> list[tuple]:
    """**NL** — parent-to-child pure navigation.

    Only the parent index is usable (children are reached through their
    parents), so the child predicate is tested on every child of every
    selected parent: the big handicap the paper calls out, since the
    child collection can be a thousand times larger.
    """
    db, om = q.db, q.db.manager
    result = ResultBuilder(db, q.transactional_result)
    for entry in q.selected_parents():
        with om.borrow(entry.rid) as parent:
            parent_value = om.get_attr(parent, q.parent_project)
            children = om.get_attr(parent, q.parent_set)
            for child_rid in db.iter_set_rids(children):
                with om.borrow(child_rid) as child:
                    key = om.get_attr(child, q.child_key)
                    db.clock.charge_us(Bucket.CPU, db.params.predicate_us)
                    if key < q.child_high:  # type: ignore[operator]
                        result.append(
                            (parent_value, om.get_attr(child, q.child_project))
                        )
    return result.rows


def navigation_child_to_parent(q: TreeJoinQuery) -> list[tuple]:
    """**NOJOIN** — child-to-parent pure navigation.

    Uses the index of the *largest* collection, but may test the parent
    predicate once per child (up to 1,000 times per parent); "the join
    is hidden within the navigation pattern".
    """
    db, om = q.db, q.db.manager
    result = ResultBuilder(db, q.transactional_result)
    for entry in q.selected_children():
        with om.borrow(entry.rid) as child:
            parent_rid = om.get_attr(child, q.child_ref)
            if parent_rid is not None:
                with om.borrow(parent_rid) as parent:
                    key = om.get_attr(parent, q.parent_key)
                    db.clock.charge_us(Bucket.CPU, db.params.predicate_us)
                    if key < q.parent_high:  # type: ignore[operator]
                        result.append(
                            (om.get_attr(parent, q.parent_project),
                             om.get_attr(child, q.child_project))
                        )
    return result.rows


def hash_parents_join(q: TreeJoinQuery) -> list[tuple]:
    """**PHJ** — hash the parents, probe with the children.

    Both indexes apply and both collections are read sequentially; the
    table holds (parent id, parent information) per selected parent.
    """
    db, om = q.db, q.db.manager
    table = QueryHashTable(
        db.clock, db.params, db.counters, entry_bytes=phj_table_bytes(1)
    )
    for entry in q.selected_parents():
        with om.borrow(entry.rid) as parent:
            table.insert(entry.rid, om.get_attr(parent, q.parent_project))
    result = ResultBuilder(db, q.transactional_result)
    for entry in q.selected_children():
        with om.borrow(entry.rid) as child:
            parent_rid = om.get_attr(child, q.child_ref)
            info = table.probe(parent_rid)
            if info is not None:
                result.append((info, om.get_attr(child, q.child_project)))
    return result.rows


def hash_children_join(q: TreeJoinQuery) -> list[tuple]:
    """**CHJ** — hash the children by parent, probe with the parents.

    The paper's variation of the pointer-based join of Shekita & Carey
    [14]: because there is no hybrid hashing, the parent collection can
    be scanned *sequentially* instead of in hash order.  The price is a
    table holding the children — 3 to 1000 times more entries — over a
    bucket directory covering the whole parent domain (Figure 10).
    """
    db, om = q.db, q.db.manager
    table = QueryHashTable(
        db.clock,
        db.params,
        db.counters,
        entry_bytes=CHJ_CHILD_BYTES,
        bucket_bytes=CHJ_BUCKET_BYTES,
    )
    for entry in q.selected_children():
        with om.borrow(entry.rid) as child:
            table.insert(
                om.get_attr(child, q.child_ref),
                om.get_attr(child, q.child_project),
            )
    result = ResultBuilder(db, q.transactional_result)
    for entry in q.selected_parents():
        matches = table.probe_all(entry.rid)
        if matches:
            with om.borrow(entry.rid) as parent:
                parent_value = om.get_attr(parent, q.parent_project)
            for child_value in matches:
                result.append((parent_value, child_value))
    return result.rows


def sort_merge_join(q: TreeJoinQuery) -> list[tuple]:
    """Sort-merge pointer join — the family the paper "started testing
    ... but they proved to be worse than hash-based ones and we dropped
    them".  Kept for the ablation benchmark.

    Children are reduced to (parent rid, projected value) pairs and
    sorted by parent rid; parents arrive rid-sorted from their clustered
    index scan; a merge pass pairs them up.
    """
    db, om = q.db, q.db.manager
    child_pairs: list[tuple[Rid, object]] = []
    for entry in q.selected_children():
        with om.borrow(entry.rid) as child:
            parent_rid = om.get_attr(child, q.child_ref)
            if parent_rid is not None:
                child_pairs.append(
                    (parent_rid, om.get_attr(child, q.child_project))
                )
    child_pairs = sort_charged(
        child_pairs, db.clock, db.params, key=lambda p: p[0], bytes_per_item=16
    )

    parent_entries = [
        (entry.rid, entry.key) for entry in q.selected_parents()
    ]
    parent_entries = sort_charged(
        parent_entries, db.clock, db.params, key=lambda p: p[0], bytes_per_item=16
    )

    result = ResultBuilder(db, q.transactional_result)
    i = 0
    for parent_rid, __key in parent_entries:
        while i < len(child_pairs) and child_pairs[i][0] < parent_rid:
            db.clock.charge_us(Bucket.CPU, db.params.compare_us)
            i += 1
        if i >= len(child_pairs):
            break
        if child_pairs[i][0] != parent_rid:
            continue
        with om.borrow(parent_rid) as parent:
            parent_value = om.get_attr(parent, q.parent_project)
        j = i
        while j < len(child_pairs) and child_pairs[j][0] == parent_rid:
            db.clock.charge_us(Bucket.CPU, db.params.compare_us)
            result.append((parent_value, child_pairs[j][1]))
            j += 1
        i = j
    return result.rows


def hybrid_hash_parents_join(q: TreeJoinQuery) -> list[tuple]:
    """Hybrid-hash PHJ — the improvement the paper names but never ran
    ("we did not consider hybrid hashing [17] to optimize this").

    When the parent table would exceed the memory budget, the overflow
    fraction of both inputs is partitioned to disk and re-read, instead
    of letting the OS thrash: the swap penalty is replaced by sequential
    partition I/O, which is the entire point of hybrid hashing.
    """
    db, om = q.db, q.db.manager
    budget = db.params.memory.query_memory_bytes

    parents = []
    for entry in q.selected_parents():
        with om.borrow(entry.rid) as parent:
            parents.append((entry.rid, om.get_attr(parent, q.parent_project)))
    table_bytes = phj_table_bytes(len(parents))
    spill_fraction = 0.0
    if budget and table_bytes > budget:
        spill_fraction = (table_bytes - budget) / table_bytes

    # Overflow partitions are written once and read once (build side).
    spilled_build_pages = pages_for_bytes(int(table_bytes * spill_fraction))
    for __ in range(spilled_build_pages):
        db.clock.charge_ms(Bucket.IO, db.params.page_write_ms)
        db.clock.charge_ms(Bucket.IO, db.params.page_read_ms)
        db.counters.disk_writes += 1
        db.counters.disk_reads += 1

    table = QueryHashTable(
        db.clock,
        db.params,
        db.counters,
        entry_bytes=phj_table_bytes(1),
        budget_bytes=table_bytes,  # partitions always fit: no thrash
    )
    for parent_rid, value in parents:
        table.insert(parent_rid, value)

    result = ResultBuilder(db, q.transactional_result)
    probe_bytes = 0
    for entry in q.selected_children():
        with om.borrow(entry.rid) as child:
            parent_rid = om.get_attr(child, q.child_ref)
            # A spill_fraction of probes lands in spilled partitions and
            # is written/re-read with them.
            probe_bytes += int(16 * spill_fraction)
            info = table.probe(parent_rid)
            if info is not None:
                result.append((info, om.get_attr(child, q.child_project)))
    spilled_probe_pages = pages_for_bytes(probe_bytes)
    for __ in range(spilled_probe_pages):
        db.clock.charge_ms(Bucket.IO, db.params.page_write_ms)
        db.clock.charge_ms(Bucket.IO, db.params.page_read_ms)
        db.counters.disk_writes += 1
        db.counters.disk_reads += 1
    return result.rows


#: Registry used by the benchmark harness and the optimizer; the keys
#: are the paper's algorithm names.
ALGORITHMS: dict[str, JoinAlgorithm] = {
    "NL": navigation_parent_to_child,
    "NOJOIN": navigation_child_to_parent,
    "PHJ": hash_parents_join,
    "CHJ": hash_children_join,
    "SMJ": sort_merge_join,
    "PHJ-HYBRID": hybrid_hash_parents_join,
}
