"""The Derby schema, exactly as Figure 1 reduces it.

Classes::

    Provider: name, upin, address, specialty, office, clients set(Patient)
    Patient:  name, mrn, age, sex, random_integer, num,
              primary_care_provider: Provider

Names::

    Providers  set(Provider)
    Patients   set(Patient)

With 16-character strings the encoded Provider is ~120 bytes and the
Patient ~60 bytes, matching the paper's Section 2 arithmetic.
"""

from __future__ import annotations

from repro.objects.model import AttrKind, AttributeDef, Schema

PROVIDER_CLASS = "Provider"
PATIENT_CLASS = "Patient"

PROVIDERS_NAME = "Providers"
PATIENTS_NAME = "Patients"


def build_derby_schema() -> Schema:
    """Create a fresh schema holding the two Derby classes."""
    schema = Schema()
    schema.define(
        PROVIDER_CLASS,
        [
            AttributeDef("name", AttrKind.STRING),
            AttributeDef("upin", AttrKind.INT32),
            AttributeDef("address", AttrKind.STRING),
            AttributeDef("specialty", AttrKind.STRING),
            AttributeDef("office", AttrKind.STRING),
            AttributeDef("clients", AttrKind.REF_SET, target=PATIENT_CLASS),
        ],
    )
    schema.define(
        PATIENT_CLASS,
        [
            AttributeDef("name", AttrKind.STRING),
            AttributeDef("mrn", AttrKind.INT32),
            AttributeDef("age", AttrKind.INT32),
            AttributeDef("sex", AttrKind.CHAR),
            AttributeDef("random_integer", AttrKind.INT32),
            AttributeDef("num", AttrKind.INT32),
            AttributeDef(
                "primary_care_provider", AttrKind.REF, target=PROVIDER_CLASS
            ),
        ],
    )
    return schema


#: Comic-book names the paper's Figure 2 uses; cycled by the generator.
CHARACTER_NAMES = (
    "Donald Duck",
    "Asterix",
    "Daisy Duck",
    "Obelix",
    "Tintin",
    "Corto Maltese",
    "Valentin",
    "Gaston",
    "Spirou",
    "Fantasio",
)


def character_name(i: int) -> str:
    """A deterministic, vaguely Figure-2-flavoured name for object i."""
    return f"{CHARACTER_NAMES[i % len(CHARACTER_NAMES)]} {i}"
