"""Logical Derby data generation.

The paper builds its databases in a specific order (Section 3.2): all
doctors first (``upin`` = relative disk position), then all patients
(``random_integer`` drawn with lrand48 between 1 and the number of
doctors), then a join over ``upin = random_integer`` updates the
association.  We reproduce that *logical* process here, independent of
the physical organization: the clustering loaders in
:mod:`repro.cluster.loader` decide where each object lands on disk.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.derby.config import DerbyConfig
from repro.derby.lrand48 import Lrand48
from repro.derby.schema import character_name


@dataclass
class LogicalProvider:
    """One doctor before physical placement."""

    upin: int               # 1-based logical creation rank
    name: str
    address: str
    specialty: str
    office: str
    patient_idxs: list[int] = field(default_factory=list)


@dataclass
class LogicalPatient:
    """One patient before physical placement."""

    mrn: int                # 1-based logical creation rank
    name: str
    age: int
    sex: str
    random_integer: int     # in [1, n_providers]: the assigned doctor
    num: int                # random key, uniform over [0, n_patients)

    @property
    def provider_idx(self) -> int:
        return self.random_integer - 1


@dataclass
class LogicalDatabase:
    """The generated logical content of one Derby database."""

    config: DerbyConfig
    providers: list[LogicalProvider]
    patients: list[LogicalPatient]

    @property
    def n_providers(self) -> int:
        return len(self.providers)

    @property
    def n_patients(self) -> int:
        return len(self.patients)


_SPECIALTIES = ("cardiology", "oncology", "pediatrics", "surgery", "gp")


def generate(config: DerbyConfig) -> LogicalDatabase:
    """Generate the logical database for ``config`` deterministically."""
    rng = Lrand48(config.seed)
    providers = [
        LogicalProvider(
            upin=i + 1,
            name=character_name(i),
            address=f"{i % 997} Rue de Saverne",
            specialty=_SPECIALTIES[i % len(_SPECIALTIES)],
            office=f"office-{i % 512}",
        )
        for i in range(config.n_providers)
    ]
    patients = []
    for j in range(config.n_patients):
        assigned = rng.randint_1_to(config.n_providers)
        patients.append(
            LogicalPatient(
                mrn=j + 1,
                name=character_name(j + 13),
                age=1 + rng.randrange(99),
                sex="F" if rng.randrange(2) else "M",
                random_integer=assigned,
                num=rng.randrange(config.n_patients),
            )
        )
        providers[assigned - 1].patient_idxs.append(j)
    return LogicalDatabase(config, providers, patients)
