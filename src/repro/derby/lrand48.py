"""Bit-exact reimplementation of Unix ``lrand48``/``srand48``.

The paper assigns the ``random_integer`` attribute "using the Unix
lrand48 function" (Section 3.2); reproducing the generator keeps the
randomized doctor-patient association distribution identical.

``lrand48`` is the 48-bit linear congruential generator

    X(n+1) = (a * X(n) + c) mod 2**48,   a = 0x5DEECE66D, c = 0xB

returning the high 31 bits; ``srand48(seed)`` sets
``X = (seed << 16) | 0x330E``.
"""

from __future__ import annotations

_A = 0x5DEECE66D
_C = 0xB
_MASK = (1 << 48) - 1
_SRAND48_PAD = 0x330E


class Lrand48:
    """One independent lrand48 stream."""

    def __init__(self, seed: int = 0):
        self.srand48(seed)

    def srand48(self, seed: int) -> None:
        """Seed exactly as C's ``srand48`` does (low 32 bits of seed)."""
        self._x = (((seed & 0xFFFFFFFF) << 16) | _SRAND48_PAD) & _MASK

    def lrand48(self) -> int:
        """Next value, uniform over [0, 2**31)."""
        self._x = (_A * self._x + _C) & _MASK
        return self._x >> 17

    def randrange(self, n: int) -> int:
        """Uniform-ish over [0, n) the way 1990s C code did it: modulo."""
        if n <= 0:
            raise ValueError(f"randrange needs n >= 1, got {n}")
        return self.lrand48() % n

    def randint_1_to(self, n: int) -> int:
        """Uniform-ish over [1, n] — the paper's random_integer
        "comprised between 1 and 1M (the number of doctors)"."""
        return 1 + self.randrange(n)
