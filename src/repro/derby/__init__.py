"""The Derby doctor/patient workload (paper, Figure 1).

The paper adapted the 1997 Derby schema down to two classes — ``Provider``
and ``Patient`` — and two databases: 2,000 providers with ~1,000 patients
each, and 1,000,000 providers with ~3 patients each.  The randomized
doctor-patient association is drawn with Unix ``lrand48`` (Section 3.2),
reimplemented bit-exactly in :mod:`repro.derby.lrand48`.
"""

from repro.derby.config import DerbyConfig
from repro.derby.generator import LogicalDatabase, LogicalPatient, LogicalProvider, generate
from repro.derby.lrand48 import Lrand48
from repro.derby.schema import build_derby_schema

__all__ = [
    "DerbyConfig",
    "Lrand48",
    "build_derby_schema",
    "generate",
    "LogicalDatabase",
    "LogicalProvider",
    "LogicalPatient",
]
