"""Configuration of a Derby database build.

The paper studies two logical databases — 2,000 providers with ~1,000
patients each and 1,000,000 providers with ~3 patients each — under three
physical organizations, on a machine with fixed memory budgets.  A
:class:`DerbyConfig` names one such combination at a chosen *scale*:
object counts and memory budgets shrink together so that every ratio the
results depend on (cache pages / file pages, hash bytes / free RAM) is
preserved (DESIGN.md §5).
"""

from __future__ import annotations

import enum
import os
from dataclasses import dataclass, field, replace

from repro.simtime import CostParams

#: Environment variable overriding the default scale for benchmarks.
SCALE_ENV_VAR = "REPRO_SCALE"

DEFAULT_SCALE = 0.01


class Clustering(enum.Enum):
    """The paper's three physical organizations (Figure 2) plus the
    association-ordered alternative of Carey & Lapis [4] discussed in
    Section 5.3."""

    CLASS = "class"              # one file per class, creation order
    RANDOM = "random"            # one file, random interleaving
    COMPOSITION = "composition"  # one file, provider followed by patients
    ASSOCIATION = "association"  # two files, patients in provider order


def default_scale() -> float:
    """Scale factor from ``REPRO_SCALE`` or the library default."""
    raw = os.environ.get(SCALE_ENV_VAR)
    if raw is None:
        return DEFAULT_SCALE
    scale = float(raw)
    if scale <= 0:
        raise ValueError(f"{SCALE_ENV_VAR} must be positive, got {raw}")
    return scale


@dataclass(frozen=True)
class DerbyConfig:
    """One database build recipe."""

    n_providers: int
    n_patients: int
    clustering: Clustering = Clustering.CLASS
    scale: float = 1.0
    seed: int = 1997
    #: Create indexes before populating (the paper's hard-won advice).
    index_first: bool = True
    #: Load inside logged transactions (the slow path; the paper loads
    #: with transactions off).
    logged_load: bool = False
    #: Objects per load transaction (the paper's batch of 10,000).
    commit_batch: int = 10_000
    params: CostParams = field(default_factory=CostParams)

    def __post_init__(self) -> None:
        if self.n_providers < 1 or self.n_patients < 1:
            raise ValueError("need at least one provider and one patient")

    # -- the paper's two databases -------------------------------------

    @classmethod
    def db_1to1000(
        cls, scale: float | None = None, clustering: Clustering = Clustering.CLASS,
        **overrides,
    ) -> "DerbyConfig":
        """2,000 providers x ~1,000 patients each (2M patients)."""
        scale = default_scale() if scale is None else scale
        return cls(
            n_providers=max(2, round(2_000 * scale)),
            n_patients=max(20, round(2_000_000 * scale)),
            clustering=clustering,
            scale=scale,
            params=CostParams().scaled(scale),
            **overrides,
        )

    @classmethod
    def db_1to3(
        cls, scale: float | None = None, clustering: Clustering = Clustering.CLASS,
        **overrides,
    ) -> "DerbyConfig":
        """1,000,000 providers x ~3 patients each (3M patients)."""
        scale = default_scale() if scale is None else scale
        return cls(
            n_providers=max(4, round(1_000_000 * scale)),
            n_patients=max(12, round(3_000_000 * scale)),
            clustering=clustering,
            scale=scale,
            params=CostParams().scaled(scale),
            **overrides,
        )

    def with_clustering(self, clustering: Clustering) -> "DerbyConfig":
        return replace(self, clustering=clustering)

    @property
    def avg_children(self) -> float:
        return self.n_patients / self.n_providers

    # -- predicate thresholds -------------------------------------------

    def mrn_threshold(self, selectivity_pct: float) -> int:
        """k1 such that ``mrn < k1`` selects ~selectivity_pct% of
        patients (mrn is the 1-based creation rank, uniform)."""
        return round(self.n_patients * selectivity_pct / 100.0) + 1

    def upin_threshold(self, selectivity_pct: float) -> int:
        """k2 such that ``upin < k2`` selects ~selectivity_pct% of
        providers."""
        return round(self.n_providers * selectivity_pct / 100.0) + 1

    def num_threshold(self, selectivity_pct: float) -> int:
        """k such that ``num > k`` selects ~selectivity_pct% of patients
        (num is uniform over [0, n_patients))."""
        return round(self.n_patients * (1.0 - selectivity_pct / 100.0)) - 1
