"""Size and time units shared across the library.

The paper's hardware vocabulary is pages, kilobytes and megabytes; keeping
the conversions in one module avoids magic numbers in the substrates.
"""

from __future__ import annotations

KB = 1024
MB = 1024 * KB

#: O2 used 4 KB pages (paper, Section 2).
PAGE_SIZE = 4 * KB

#: Milliseconds per second, for clock conversions.
MS_PER_S = 1000.0

#: Microseconds per second, for clock conversions.
US_PER_S = 1_000_000.0


def pages_for_bytes(n_bytes: int, page_size: int = PAGE_SIZE) -> int:
    """Number of pages needed to hold ``n_bytes`` (ceiling division)."""
    if n_bytes < 0:
        raise ValueError(f"negative byte count: {n_bytes}")
    return -(-n_bytes // page_size)


def bytes_for_pages(n_pages: int, page_size: int = PAGE_SIZE) -> int:
    """Total bytes spanned by ``n_pages``."""
    if n_pages < 0:
        raise ValueError(f"negative page count: {n_pages}")
    return n_pages * page_size
