"""Reporters: plain text for humans, JSON for tooling."""

from __future__ import annotations

import json

from repro.lint.findings import Finding


def render_text(
    findings: list[Finding], files_checked: int, baselined: int = 0
) -> str:
    """One finding per line, compiler style, plus a summary line."""
    lines = [finding.render() for finding in findings]
    summary = (
        f"{len(findings)} finding{'s' if len(findings) != 1 else ''} "
        f"in {files_checked} file{'s' if files_checked != 1 else ''}"
    )
    if baselined:
        summary += f" ({baselined} baselined)"
    lines.append(summary)
    return "\n".join(lines)


def render_json(
    findings: list[Finding], files_checked: int, baselined: int = 0
) -> str:
    payload = {
        "files_checked": files_checked,
        "baselined": baselined,
        "findings": [
            {
                "rule": f.rule,
                "path": f.path,
                "line": f.line,
                "col": f.col,
                "message": f.message,
                "symbol": f.symbol,
                "fingerprint": f.fingerprint,
            }
            for f in findings
        ],
    }
    return json.dumps(payload, indent=2) + "\n"
