"""Reporters: text for humans, JSON for tooling, SARIF for CI."""

from __future__ import annotations

import json

from repro.lint.findings import Finding

#: One-line rule descriptions for the SARIF rule metadata.
_RULE_DESCRIPTIONS = {
    "SYNTAX": "File must parse as Python.",
    "DET": "No wall-clock, OS entropy or hash-order nondeterminism.",
    "CHARGE": "Measured paths must charge the simulated clock/counters.",
    "LAYER": "Module imports must follow the architecture layer DAG.",
    "PAIR": "Paired resources must be released on every exit path.",
    "EXC": "No swallowed exceptions on measured paths.",
    "ATOM": (
        "No read-modify-write of shared server-tier state across a "
        "may-yield call without a critical bracket."
    ),
    "PROTO": (
        "Protocol state machines: txn lifecycle, WAL force rule, "
        "2PC decision-log discipline."
    ),
    "ESCAPE": "Borrowed handles must not escape their with block.",
}


def render_text(
    findings: list[Finding], files_checked: int, baselined: int = 0
) -> str:
    """One finding per line, compiler style, plus a summary line."""
    lines = [finding.render() for finding in findings]
    summary = (
        f"{len(findings)} finding{'s' if len(findings) != 1 else ''} "
        f"in {files_checked} file{'s' if files_checked != 1 else ''}"
    )
    if baselined:
        summary += f" ({baselined} baselined)"
    lines.append(summary)
    return "\n".join(lines)


def render_json(
    findings: list[Finding], files_checked: int, baselined: int = 0
) -> str:
    payload = {
        "files_checked": files_checked,
        "baselined": baselined,
        "findings": [
            {
                "rule": f.rule,
                "path": f.path,
                "line": f.line,
                "col": f.col,
                "message": f.message,
                "symbol": f.symbol,
                "fingerprint": f.fingerprint,
            }
            for f in findings
        ],
    }
    return json.dumps(payload, indent=2) + "\n"


def render_sarif(
    findings: list[Finding], files_checked: int, baselined: int = 0
) -> str:
    """SARIF 2.1.0, the format CI annotation uploaders consume.  One
    run, one result per finding; the simlint fingerprint rides along as
    a partial fingerprint so re-runs dedupe."""
    rule_ids = sorted({f.rule for f in findings} | set(_RULE_DESCRIPTIONS))
    rules = [
        {
            "id": rule_id,
            "shortDescription": {
                "text": _RULE_DESCRIPTIONS.get(rule_id, rule_id)
            },
        }
        for rule_id in rule_ids
    ]
    results = [
        {
            "ruleId": f.rule,
            "ruleIndex": rule_ids.index(f.rule),
            "level": "error",
            "message": {"text": f.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": f.path.replace("\\", "/"),
                            "uriBaseId": "SRCROOT",
                        },
                        "region": {
                            "startLine": f.line,
                            "startColumn": f.col + 1,
                        },
                    },
                    "logicalLocations": (
                        [{"fullyQualifiedName": f.symbol}] if f.symbol else []
                    ),
                }
            ],
            "partialFingerprints": {"simlint/v1": f.fingerprint},
        }
        for f in findings
    ]
    payload = {
        "$schema": (
            "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
            "master/Schemata/sarif-schema-2.1.0.json"
        ),
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "simlint",
                        "informationUri": "https://example.invalid/simlint",
                        "rules": rules,
                    }
                },
                "originalUriBaseIds": {"SRCROOT": {"uri": "file:///"}},
                "properties": {
                    "filesChecked": files_checked,
                    "baselined": baselined,
                },
                "results": results,
            }
        ],
    }
    return json.dumps(payload, indent=2) + "\n"
