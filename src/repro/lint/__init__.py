"""simlint — the reproduction's invariant linter.

The simulator's guarantees rest on properties no unit test can cover
exhaustively, so this package checks them statically, as AST rules over
``src/repro/``:

``DET``
    Bit-determinism: no wall-clock time, no unseeded randomness, no
    ``id()`` ordering, no iteration over sets into ordered output.
``CHARGE``
    Cost completeness: code in the storage/buffer/exec/objects
    substrates that touches pages, handles or RPC paths must reach a
    ``SimClock.charge_*`` call or a ``CounterSet`` bump.
``LAYER``
    The architecture doc's import DAG (simtime → storage → buffer →
    objects → ... → service) stays acyclic.
``PAIR``
    Paired resources (``load``/``unref``, ``acquire``/``release_all``)
    are released on every exit path.
``EXC``
    No over-broad ``except`` that can swallow ``repro.errors`` types.

Run it as ``python -m repro lint`` (or ``make lint``); configuration
lives in ``pyproject.toml`` under ``[tool.simlint]``.  Findings can be
suppressed line-by-line with ``# simlint: ok[RULE] justification``.
See ``docs/lint.md`` for the rules and the invariants they protect.

This package deliberately imports nothing from the rest of ``repro``
(the linter must not depend on the code it judges).
"""

from repro.lint.baseline import Baseline
from repro.lint.config import LintConfig, load_config
from repro.lint.findings import Finding
from repro.lint.report import render_json, render_text
from repro.lint.runner import LintResult, lint_paths

__all__ = [
    "Baseline",
    "Finding",
    "LintConfig",
    "LintResult",
    "lint_paths",
    "load_config",
    "render_json",
    "render_text",
]
