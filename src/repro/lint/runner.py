"""The runner: files → project → rules → suppression-filtered findings."""

from __future__ import annotations

# simlint: ok[DET] analyzer wall time is reporting, not simulated cost
import time
from dataclasses import dataclass, field

from repro.lint.config import LintConfig
from repro.lint.findings import Finding, sort_findings
from repro.lint.project import Project, build_project, iter_python_files


@dataclass
class LintResult:
    """Everything a reporter or exit-code decision needs."""

    findings: list[Finding]           # post-suppression, sorted
    files_checked: int
    suppressed: int = 0
    #: findings whose inline suppression matched, for --show-suppressed.
    suppressed_findings: list[Finding] = field(default_factory=list)
    #: rule name -> wall seconds spent in its check() (--timing); the
    #: pseudo-entries "parse" and "callgraph" cover the shared work.
    timings: dict[str, float] = field(default_factory=dict)
    #: the analyzed project, for --dump-graph and debugging.
    project: Project | None = None


def lint_paths(
    paths: tuple[str, ...] | None = None,
    config: LintConfig | None = None,
) -> LintResult:
    """Run the selected rules over the configured (or given) paths."""
    from repro.lint.rules import ALL_RULES

    config = config or LintConfig()
    target_paths = tuple(paths) if paths else config.paths
    files = iter_python_files(target_paths, config.root)

    timings: dict[str, float] = {}
    # simlint: ok[DET] analyzer wall time is reporting, not simulated cost
    t0 = time.perf_counter()
    project, syntax_findings = build_project(files, config)
    # simlint: ok[DET] analyzer wall time is reporting, not simulated cost
    timings["parse"] = time.perf_counter() - t0

    # build the shared call graph once, up front, so per-rule timings
    # measure the rules and not whoever touches the graph first
    # simlint: ok[DET] analyzer wall time is reporting, not simulated cost
    t0 = time.perf_counter()
    graph = project.callgraph
    graph.yield_chains
    graph.reach_charge_set
    graph.touch_reasons
    # simlint: ok[DET] analyzer wall time is reporting, not simulated cost
    timings["callgraph"] = time.perf_counter() - t0

    selected = [name for name in config.select if name in ALL_RULES]
    raw: list[Finding] = list(syntax_findings)
    for name in selected:
        # simlint: ok[DET] analyzer wall time is reporting, not simulated cost
        t0 = time.perf_counter()
        raw.extend(ALL_RULES[name].check(project, config))
        # simlint: ok[DET] analyzer wall time is reporting, not simulated cost
        timings[name] = time.perf_counter() - t0

    modules_by_path = {module.path: module for module in project.modules}
    kept: list[Finding] = []
    suppressed: list[Finding] = []
    for finding in raw:
        module = modules_by_path.get(finding.path)
        if module is not None and module.is_suppressed(finding.rule, finding.line):
            suppressed.append(finding)
        else:
            kept.append(finding)

    return LintResult(
        findings=sort_findings(kept),
        files_checked=len(files),
        suppressed=len(suppressed),
        suppressed_findings=sort_findings(suppressed),
        timings=timings,
        project=project,
    )
