"""The runner: files → project → rules → suppression-filtered findings."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lint.config import LintConfig
from repro.lint.findings import Finding, sort_findings
from repro.lint.project import build_project, iter_python_files


@dataclass
class LintResult:
    """Everything a reporter or exit-code decision needs."""

    findings: list[Finding]           # post-suppression, sorted
    files_checked: int
    suppressed: int = 0
    #: findings whose inline suppression matched, for --show-suppressed.
    suppressed_findings: list[Finding] = field(default_factory=list)


def lint_paths(
    paths: tuple[str, ...] | None = None,
    config: LintConfig | None = None,
) -> LintResult:
    """Run the selected rules over the configured (or given) paths."""
    from repro.lint.rules import ALL_RULES

    config = config or LintConfig()
    target_paths = tuple(paths) if paths else config.paths
    files = iter_python_files(target_paths, config.root)
    project, syntax_findings = build_project(files, config)

    selected = [name for name in config.select if name in ALL_RULES]
    raw: list[Finding] = list(syntax_findings)
    for name in selected:
        raw.extend(ALL_RULES[name].check(project, config))

    modules_by_path = {module.path: module for module in project.modules}
    kept: list[Finding] = []
    suppressed: list[Finding] = []
    for finding in raw:
        module = modules_by_path.get(finding.path)
        if module is not None and module.is_suppressed(finding.rule, finding.line):
            suppressed.append(finding)
        else:
            kept.append(finding)

    return LintResult(
        findings=sort_findings(kept),
        files_checked=len(files),
        suppressed=len(suppressed),
        suppressed_findings=sort_findings(suppressed),
    )
