"""The project-wide call graph with may-yield summaries.

This is the interprocedural layer the v2 rules (ATOM, PROTO, ESCAPE)
stand on, and the generalization of the name resolution the CHARGE rule
introduced.  Two resolution modes coexist on purpose:

* **name resolution** — ``x.f(...)`` resolves to *every* project
  function named ``f``.  Over-approximates reachability, which is the
  safe direction for CHARGE (a violation is "cannot possibly reach a
  charge"): the rule prefers missing a violation to inventing one.
* **attributed resolution** — a ``self.f(...)`` call inside class ``C``
  resolves to ``C.f`` alone when ``C`` defines ``f``; everything else
  falls back to name resolution.  Used for the may-yield closure, where
  precision trims false positives out of ATOM.

**May-yield** is the transitive closure of functions that can reach a
cooperative suspension point: the scheduler primitives
(:meth:`~repro.service.scheduler.CooperativeScheduler.yield_point`,
``batch_point``, ``wait_for_lock``, ``wait_for_admission``, voluntary
``pause``/``backoff``) or an indirect wait — the pager path (a client
page fault hands the baton over via the ``on_fault`` hook) and lock
acquisition (an incompatible ``acquire`` suspends the caller).  Every
function in the closure carries a human-readable call chain down to its
suspension point, which the ATOM findings quote.

The graph is built once per lint run (``Project.callgraph``) and shared
by every rule; ``to_dot()`` renders it — may-yield set highlighted —
for the CI ``lint-graph`` artifact.
"""

from __future__ import annotations

from repro.lint.config import LintConfig
from repro.lint.project import CallSite, FunctionInfo, Project

#: Cap on the rendered suspension-chain text in findings.
_CHAIN_LIMIT = 160

#: Builtin container/primitive method names.  ``self._active.add(x)``
#: is a ``set.add``, not a project ``Index.add`` — resolving these by
#: bare name would drown the may-yield closure in false edges, so they
#: only resolve through class attribution (``self.add()`` inside a
#: class that defines ``add``).
_CONTAINER_METHODS = frozenset(
    {
        "add",
        "append",
        "appendleft",
        "clear",
        "count",
        "discard",
        "extend",
        "get",
        "index",
        "insert",
        "items",
        "keys",
        "pop",
        "popitem",
        "popleft",
        "remove",
        "setdefault",
        "sort",
        "update",
        "values",
    }
)


class CallGraph:
    """Resolved calls, charge/touch reachability and may-yield summaries."""

    def __init__(self, project: Project, config: LintConfig):
        self.project = project
        self.config = config
        self.functions: list[FunctionInfo] = project.functions
        self.defs_by_name = project.defs_by_name
        #: index of each function in ``functions`` (identity key).
        self._index: dict[int, int] = {
            id(info): i for i, info in enumerate(self.functions)
        }
        #: class name -> method name -> function (first definition wins;
        #: duplicate class names across modules are rare and benign).
        self.methods: dict[str, dict[str, FunctionInfo]] = {}
        for info in self.functions:
            if info.owner_class is not None:
                bucket = self.methods.setdefault(info.owner_class, {})
                bucket.setdefault(info.node.name, info)
        self._yield_chains: dict[int, str] | None = None
        self._touch_reasons: dict[int, str] | None = None
        self._reach_charge: set[int] | None = None

    # -- resolution ---------------------------------------------------------

    def resolve_site(
        self, caller: FunctionInfo, site: CallSite
    ) -> tuple[FunctionInfo, ...]:
        """Attributed resolution: ``self.f()`` binds to the enclosing
        class's own ``f`` when it has one; otherwise every project
        function named ``f`` (name resolution)."""
        if site.recv == ("self",) and caller.owner_class is not None:
            own = self.methods.get(caller.owner_class, {}).get(site.name)
            if own is not None:
                return (own,)
        if site.name in _CONTAINER_METHODS:
            return ()
        return tuple(self.defs_by_name.get(site.name, ()))

    def resolve_name(self, name: str) -> tuple[FunctionInfo, ...]:
        """Pure name resolution (the CHARGE over-approximation)."""
        return tuple(self.defs_by_name.get(name, ()))

    # -- may-yield ----------------------------------------------------------

    def _direct_yield(self, info: FunctionInfo) -> str | None:
        """The first (source-order) suspension primitive this function
        calls directly, or None."""
        yield_calls = set(self.config.yield_calls)
        fault_calls = set(self.config.fault_calls)
        for site in info.call_sites:
            if site.name in yield_calls:
                return f"{site.name}() [scheduler yield point]"
            if site.name in fault_calls:
                return f"{site.name}() [page fault / lock wait]"
        return None

    def _compute_yield_chains(self) -> dict[int, str]:
        chains: dict[int, str] = {}
        for i, info in enumerate(self.functions):
            reason = self._direct_yield(info)
            if reason is not None:
                chains[i] = reason
        # Deterministic fixpoint: source order within a function, index
        # order across functions, first discovered chain wins.
        changed = True
        while changed:
            changed = False
            for i, info in enumerate(self.functions):
                if i in chains:
                    continue
                for site in info.call_sites:
                    hit = None
                    for callee in self.resolve_site(info, site):
                        j = self._index[id(callee)]
                        if j in chains and j != i:
                            hit = chains[j]
                            break
                    if hit is not None:
                        chain = f"{site.name}() -> {hit}"
                        if len(chain) > _CHAIN_LIMIT:
                            chain = chain[: _CHAIN_LIMIT - 3] + "..."
                        chains[i] = chain
                        changed = True
                        break
        return chains

    @property
    def yield_chains(self) -> dict[int, str]:
        if self._yield_chains is None:
            self._yield_chains = self._compute_yield_chains()
        return self._yield_chains

    def yield_chain(self, info: FunctionInfo) -> str | None:
        """The suspension chain for ``info``, or None if it cannot
        reach a yield point."""
        return self.yield_chains.get(self._index[id(info)])

    def may_yield(self, info: FunctionInfo) -> bool:
        return self._index[id(info)] in self.yield_chains

    def site_may_yield(
        self, caller: FunctionInfo, site: CallSite
    ) -> str | None:
        """Can this *call site* suspend the caller?  Returns the chain
        text, or None.  A call is suspending when its bare name is a
        suspension primitive or any attributed resolution may yield."""
        if site.name in self.config.yield_calls:
            return f"{site.name}() [scheduler yield point]"
        if site.name in self.config.fault_calls:
            return f"{site.name}() [page fault / lock wait]"
        for callee in self.resolve_site(caller, site):
            if callee is caller:
                continue
            chain = self.yield_chain(callee)
            if chain is not None:
                return f"{site.name}() -> {chain}"
        return None

    # -- charge reachability (the CHARGE rule's queries) --------------------

    @property
    def reach_charge_set(self) -> set[int]:
        """Functions that can reach a charge call / counter bump through
        the *name-resolved* graph (reverse closure from the chargers)."""
        if self._reach_charge is None:
            reverse: dict[int, list[int]] = {}
            for i, info in enumerate(self.functions):
                for name in info.called_names:
                    for callee in self.defs_by_name.get(name, ()):
                        j = self._index[id(callee)]
                        reverse.setdefault(j, []).append(i)
            reached = {
                i
                for i, info in enumerate(self.functions)
                if info.charges_directly
            }
            frontier = list(reached)
            while frontier:
                j = frontier.pop()
                for i in reverse.get(j, ()):
                    if i not in reached:
                        reached.add(i)
                        frontier.append(i)
            self._reach_charge = reached
        return self._reach_charge

    def reaches_charge(self, info: FunctionInfo) -> bool:
        return self._index[id(info)] in self.reach_charge_set

    @property
    def touch_reasons(self) -> dict[int, str]:
        """function index -> why it touches a costed resource (directly
        or through a name-resolved callee)."""
        if self._touch_reasons is None:
            config = self.config
            reasons: dict[int, str] = {}
            for i, info in enumerate(self.functions):
                direct_calls = info.called_names & set(
                    config.charge_touch_methods
                )
                if direct_calls:
                    reasons[i] = f"calls {sorted(direct_calls)[0]}()"
                    continue
                direct_attrs = info.attr_names & set(config.charge_touch_attrs)
                if direct_attrs:
                    reasons[i] = f"accesses .{sorted(direct_attrs)[0]}"
            changed = True
            while changed:
                changed = False
                for i, info in enumerate(self.functions):
                    if i in reasons:
                        continue
                    for name in sorted(info.called_names):
                        hit = None
                        for callee in self.defs_by_name.get(name, ()):
                            j = self._index[id(callee)]
                            if j in reasons and j != i:
                                hit = reasons[j]
                                break
                        if hit is not None:
                            reasons[i] = f"calls {name}(), which {hit}"
                            changed = True
                            break
            self._touch_reasons = reasons
        return self._touch_reasons

    def touches(self, info: FunctionInfo) -> str | None:
        return self.touch_reasons.get(self._index[id(info)])

    # -- rendering ----------------------------------------------------------

    def to_dot(self) -> str:
        """The attributed call graph as DOT, may-yield set highlighted
        and listed in a comment header (the CI ``lint-graph``
        artifact)."""
        chains = self.yield_chains

        def label(info: FunctionInfo) -> str:
            return f"{info.module.name}:{info.qualname}"

        lines = ["// simlint call graph (attributed resolution)"]
        yielders = sorted(
            label(self.functions[i]) for i in chains
        )
        lines.append(f"// may-yield set: {len(yielders)} function(s)")
        for name in yielders:
            lines.append(f"//   may-yield: {name}")
        lines.append("digraph simlint_callgraph {")
        lines.append("  rankdir=LR;")
        lines.append("  node [shape=box, fontsize=9];")
        for i, info in enumerate(self.functions):
            attrs = ""
            if i in chains:
                attrs = ' [style=filled, fillcolor="#ffd0d0"]'
            lines.append(f'  "{label(info)}"{attrs};')
        seen: set[tuple[int, int]] = set()
        for i, info in enumerate(self.functions):
            for site in info.call_sites:
                for callee in self.resolve_site(info, site):
                    j = self._index[id(callee)]
                    if i == j or (i, j) in seen:
                        continue
                    seen.add((i, j))
                    lines.append(
                        f'  "{label(info)}" -> "{label(self.functions[j])}";'
                    )
        lines.append("}")
        return "\n".join(lines) + "\n"
