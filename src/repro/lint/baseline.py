"""Baseline files: tolerate known findings, fail on new ones.

A baseline maps finding fingerprints (line-number independent, see
:class:`~repro.lint.findings.Finding`) to how many occurrences are
tolerated.  The shipped repository has an **empty** baseline — every
real violation was fixed or given an inline justified suppression —
but the mechanism exists so the linter can be dropped onto a dirtier
tree without going red on day one.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.lint.findings import Finding

_VERSION = 1


@dataclass
class Baseline:
    """Tolerated finding counts, keyed by fingerprint."""

    counts: dict[str, int] = field(default_factory=dict)

    @classmethod
    def from_findings(cls, findings: list[Finding]) -> Baseline:
        counts: dict[str, int] = {}
        for finding in findings:
            counts[finding.fingerprint] = counts.get(finding.fingerprint, 0) + 1
        return cls(counts)

    @classmethod
    def load(cls, path: str | Path) -> Baseline:
        with open(path, encoding="utf-8") as fh:
            data = json.load(fh)
        if data.get("version") != _VERSION:
            raise ValueError(
                f"unsupported baseline version {data.get('version')!r} in {path}"
            )
        entries = data.get("entries", {})
        return cls({str(k): int(v) for k, v in entries.items()})

    def save(self, path: str | Path) -> None:
        payload = {
            "version": _VERSION,
            "entries": {k: self.counts[k] for k in sorted(self.counts)},
        }
        Path(path).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )

    def filter(self, findings: list[Finding]) -> tuple[list[Finding], int]:
        """(new findings, number baselined).  The first ``counts[fp]``
        occurrences of each fingerprint are tolerated; extras are new."""
        seen: dict[str, int] = {}
        new: list[Finding] = []
        baselined = 0
        for finding in findings:
            fp = finding.fingerprint
            seen[fp] = seen.get(fp, 0) + 1
            if seen[fp] <= self.counts.get(fp, 0):
                baselined += 1
            else:
                new.append(finding)
        return new, baselined
