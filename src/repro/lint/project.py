"""Parsed view of the code under lint: modules, functions, call graph.

Rules consume two objects:

* :class:`Module` — one parsed file with its dotted name, package (the
  first component under the root package, which names its layer) and
  per-line ``# simlint: ok[RULE]`` suppressions;
* :class:`Project` — every module together, plus a *name-resolved call
  graph*: a call ``x.f(...)`` is resolved to every function named ``f``
  defined anywhere in the project.  That over-approximation can only
  make charge-reachability easier to satisfy, so the CHARGE rule errs
  toward missing a violation, never toward inventing one.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path

from repro.lint.config import LintConfig

#: ``# simlint: ok[DET]``, ``# simlint: ok[DET,PAIR] free by design``
_SUPPRESSION = re.compile(r"#\s*simlint:\s*ok\[([A-Za-z*,\s]+)\]")


def parse_suppressions(source: str) -> dict[int, set[str]]:
    """Map 1-based line number -> rule names suppressed on that line."""
    out: dict[int, set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _SUPPRESSION.search(line)
        if match:
            rules = {r.strip().upper() for r in match.group(1).split(",")}
            out[lineno] = {r for r in rules if r}
    return out


@dataclass
class Module:
    """One file under lint."""

    path: str                 # as reported in findings
    name: str                 # dotted module name, e.g. "repro.exec.joins"
    package: str              # layer key: first component under the root
    source: str
    tree: ast.Module
    suppressions: dict[int, set[str]] = field(default_factory=dict)

    def is_suppressed(self, rule: str, line: int) -> bool:
        """A finding is suppressed by ``ok[RULE]`` (or ``ok[*]``) on its
        own line or the line directly above it."""
        for candidate in (line, line - 1):
            rules = self.suppressions.get(candidate)
            if rules and (rule in rules or "*" in rules):
                return True
        return False


@dataclass(frozen=True)
class CallSite:
    """One resolved-enough call: bare callee name plus the receiver
    chain it was invoked through (``self.locks.acquire(...)`` ->
    name 'acquire', recv ('self', 'locks'))."""

    name: str
    recv: tuple[str, ...]
    line: int
    col: int


@dataclass
class FunctionInfo:
    """One function/method, with everything CHARGE needs pre-extracted.

    Nested functions and lambdas are folded into their outermost
    enclosing def: a charge inside a worker closure still discharges
    the enclosing function's obligation.
    """

    qualname: str             # "ClassName.method" or "function"
    module: Module
    node: ast.FunctionDef | ast.AsyncFunctionDef
    #: Enclosing class name, or None for module-level functions.
    owner_class: str | None = None
    called_names: set[str] = field(default_factory=set)
    attr_names: set[str] = field(default_factory=set)
    call_sites: list[CallSite] = field(default_factory=list)
    charges_directly: bool = False
    is_property: bool = False


def _dotted(node: ast.AST) -> list[str]:
    """Attribute chain as names: ``self.db.counters.rpcs`` ->
    ['self', 'db', 'counters', 'rpcs'] (empty for non-chains)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    parts.reverse()
    return parts


def call_name(call: ast.Call) -> str | None:
    """Bare name of the callee: ``f(...)`` and ``x.y.f(...)`` -> 'f'."""
    func = call.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


class _FunctionScanner(ast.NodeVisitor):
    """Fills a FunctionInfo from a def's whole subtree."""

    def __init__(self, info: FunctionInfo, config: LintConfig):
        self.info = info
        self.config = config

    def visit_Call(self, node: ast.Call) -> None:
        name = call_name(node)
        if name is not None:
            self.info.called_names.add(name)
            chain = tuple(_dotted(node.func))
            self.info.call_sites.append(
                CallSite(name, chain[:-1], node.lineno, node.col_offset)
            )
            if name in self.config.charge_calls:
                self.info.charges_directly = True
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        self.info.attr_names.add(node.attr)
        self.generic_visit(node)

    def _check_counter_target(self, target: ast.AST) -> None:
        chain = _dotted(target)
        if any(part in self.config.counter_names for part in chain[:-1]):
            self.info.charges_directly = True

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_counter_target(node.target)
        self.generic_visit(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_counter_target(target)
        self.generic_visit(node)


def _is_property(node: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    for decorator in node.decorator_list:
        chain = _dotted(decorator)
        if chain and chain[-1] in ("property", "cached_property", "setter"):
            return True
    return False


class Project:
    """All modules plus the name-resolved call graph."""

    def __init__(self, modules: list[Module], config: LintConfig):
        self.modules = modules
        self.config = config
        self.functions: list[FunctionInfo] = []
        #: bare name -> every project function with that name.
        self.defs_by_name: dict[str, list[FunctionInfo]] = {}
        self._callgraph = None
        for module in modules:
            self._index_module(module)

    @property
    def callgraph(self):
        """The project-wide call graph with may-yield summaries, built
        once on first use and shared by every rule in the run."""
        if self._callgraph is None:
            from repro.lint.callgraph import CallGraph

            self._callgraph = CallGraph(self, self.config)
        return self._callgraph

    # -- indexing ---------------------------------------------------------

    def _index_module(self, module: Module) -> None:
        def register(node, qualname: str, owner: str | None = None) -> None:
            info = FunctionInfo(
                qualname=qualname,
                module=module,
                node=node,
                owner_class=owner,
                is_property=_is_property(node),
            )
            _FunctionScanner(info, self.config).visit(node)
            self.functions.append(info)
            self.defs_by_name.setdefault(node.name, []).append(info)

        for top in module.tree.body:
            if isinstance(top, (ast.FunctionDef, ast.AsyncFunctionDef)):
                register(top, top.name)
            elif isinstance(top, ast.ClassDef):
                for item in top.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        register(item, f"{top.name}.{item.name}", top.name)

    # -- charge reachability ----------------------------------------------
    # Both queries delegate to the shared call graph, which computes the
    # full name-resolved closures once and caches them for every rule.

    def reaches_charge(self, info: FunctionInfo) -> bool:
        """Can ``info`` reach a ``charge_*`` call or counter bump through
        the name-resolved call graph (including itself)?"""
        return self.callgraph.reaches_charge(info)

    def touches(self, info: FunctionInfo) -> str | None:
        """Does ``info`` touch a costed resource (directly or through a
        project-defined callee)?  Returns a short reason, or ``None``."""
        return self.callgraph.touches(info)


# -- building the project ---------------------------------------------------

_SKIP_DIRS = {"__pycache__"}


def iter_python_files(paths: tuple[str, ...], root: str) -> list[Path]:
    """Every ``.py`` file under the given paths (files or directories),
    deterministic order."""
    out: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if not path.is_absolute():
            path = Path(root) / path
        if path.is_file() and path.suffix == ".py":
            out.append(path)
            continue
        for candidate in sorted(path.rglob("*.py")):
            parts = set(candidate.parts)
            if parts & _SKIP_DIRS or any(
                p.endswith(".egg-info") for p in candidate.parts
            ):
                continue
            out.append(candidate)
    return out


def module_name_for(path: Path, root_package: str) -> tuple[str, str]:
    """(dotted module name, layer package) for a file.

    The layer package is the first path component under the root
    package; files directly in the root package use their own stem
    (``repro/cli.py`` -> layer ``cli``).  Files outside any
    ``root_package`` directory get layer "" (LAYER skips them).
    """
    parts = list(path.with_suffix("").parts)
    if root_package in parts:
        idx = len(parts) - 1 - parts[::-1].index(root_package)
        tail = parts[idx:]
        name = ".".join(tail)
        package = tail[1] if len(tail) > 1 else root_package
        if package.endswith("__init__"):
            package = root_package
        return name, package
    return path.stem, ""


def build_project(
    files: list[Path], config: LintConfig
) -> tuple[Project, list]:
    """Parse every file; returns the project and a list of findings for
    files that do not parse (rule ``SYNTAX``)."""
    from repro.lint.findings import Finding

    modules: list[Module] = []
    errors: list[Finding] = []
    root = Path(config.root)
    for path in files:
        try:
            display = str(path.relative_to(root))
        except ValueError:
            display = str(path)
        source = path.read_text(encoding="utf-8")
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            errors.append(
                Finding(
                    rule="SYNTAX",
                    path=display,
                    line=exc.lineno or 1,
                    col=(exc.offset or 1) - 1,
                    message=f"file does not parse: {exc.msg}",
                )
            )
            continue
        name, package = module_name_for(path, config.root_package)
        modules.append(
            Module(
                path=display,
                name=name,
                package=package,
                source=source,
                tree=tree,
                suppressions=parse_suppressions(source),
            )
        )
    return Project(modules, config), errors
