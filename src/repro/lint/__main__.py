"""``python -m repro.lint`` — standalone entry point."""

from repro.lint.cli import main

raise SystemExit(main())
