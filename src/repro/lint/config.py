"""simlint configuration: defaults here, overrides in ``pyproject.toml``.

Everything under ``[tool.simlint]`` maps onto :class:`LintConfig`; the
shipped defaults describe *this* repository (its layer order, its
charging idiom), so external callers and fixtures override them
explicitly.
"""

from __future__ import annotations

import tomllib
from dataclasses import dataclass, field, replace
from pathlib import Path

#: The substrate layering of docs/architecture.md, lowest first.  A
#: module in layer N may import layers < N (module-level imports only;
#: ``if TYPE_CHECKING`` and function-scoped imports are exempt — see
#: the LAYER rule).
DEFAULT_LAYER_ORDER = (
    "units",
    "errors",
    "simtime",
    "storage",
    "buffer",
    "objects",
    "index",
    "txn",
    "stats",
    "derby",
    "exec",
    "cluster",
    "oo7",
    "oql",
    "opt",
    "recovery",
    "bench",
    "service",
    "dist",
    "analysis",
    "lint",
    "cli",
    "__main__",
)

#: Packages whose functions must charge the clock/counters when they
#: touch pages, handles or RPC paths (the CHARGE rule's scope).
DEFAULT_CHARGE_PACKAGES = ("storage", "buffer", "exec", "objects")

#: Calling a method with one of these names counts as touching a costed
#: resource (page path, record path, handle path).
DEFAULT_TOUCH_METHODS = (
    "read_page",
    "write_page",
    "get_page",
    "peek_page",
    "iter_pages",
    "mark_dirty",
    "read_resolving",
    "read_record",
    "load",
    "unref",
    "unreference",
    "_page",
    "_file",
)

#: Reading or writing an attribute with one of these names counts as
#: touching raw storage/handle state directly.
DEFAULT_TOUCH_ATTRS = ("_durable", "_live", "_parked")

#: The charging idiom: these calls (SimClock) or any assignment through
#: an attribute chain containing ``counters`` (CounterSet) discharge the
#: CHARGE obligation.
DEFAULT_CHARGE_CALLS = ("charge_ms", "charge_us", "charge_s")
DEFAULT_COUNTER_NAMES = ("counters",)

#: (open, close) method-name pairs the PAIR rule tracks.
DEFAULT_PAIRS = (
    ("load", "unref"),
    ("acquire", "release_all"),
    ("pin", "unpin"),
)

#: Cleanup calls that must not be skippable by an earlier exception.
DEFAULT_CLEANUP_CALLS = ("release_all",)


@dataclass(frozen=True)
class LintConfig:
    """Resolved simlint configuration."""

    paths: tuple[str, ...] = ("src/repro",)
    select: tuple[str, ...] = ("DET", "CHARGE", "LAYER", "PAIR", "EXC")
    baseline: str | None = None
    #: Root package whose first path component names the layer.
    root_package: str = "repro"
    layer_order: tuple[str, ...] = DEFAULT_LAYER_ORDER
    #: Extra allowed upward edges, package -> importable packages.
    layer_allow: dict[str, tuple[str, ...]] = field(default_factory=dict)
    charge_packages: tuple[str, ...] = DEFAULT_CHARGE_PACKAGES
    charge_touch_methods: tuple[str, ...] = DEFAULT_TOUCH_METHODS
    charge_touch_attrs: tuple[str, ...] = DEFAULT_TOUCH_ATTRS
    charge_calls: tuple[str, ...] = DEFAULT_CHARGE_CALLS
    counter_names: tuple[str, ...] = DEFAULT_COUNTER_NAMES
    pair_pairs: tuple[tuple[str, str], ...] = DEFAULT_PAIRS
    cleanup_calls: tuple[str, ...] = DEFAULT_CLEANUP_CALLS
    #: Directory paths are made relative to; set by load_config.
    root: str = "."


def _tuple(value) -> tuple:
    if isinstance(value, (list, tuple)):
        return tuple(value)
    raise TypeError(f"expected a list, got {value!r}")


def config_from_mapping(data: dict, root: str = ".") -> LintConfig:
    """Build a config from a ``[tool.simlint]`` mapping."""
    config = LintConfig(root=root)
    simple = {
        "paths": _tuple,
        "select": _tuple,
        "layer_order": _tuple,
        "charge_packages": _tuple,
        "charge_touch_methods": _tuple,
        "charge_touch_attrs": _tuple,
        "charge_calls": _tuple,
        "counter_names": _tuple,
        "cleanup_calls": _tuple,
        "baseline": str,
        "root_package": str,
    }
    updates: dict = {}
    for key, convert in simple.items():
        if key in data:
            updates[key] = convert(data[key])
    if "pair_pairs" in data:
        updates["pair_pairs"] = tuple(
            (str(open_name), str(close_name))
            for open_name, close_name in data["pair_pairs"]
        )
    if "layer_allow" in data:
        updates["layer_allow"] = {
            str(k): _tuple(v) for k, v in data["layer_allow"].items()
        }
    return replace(config, **updates)


def find_pyproject(start: Path) -> Path | None:
    """Nearest ``pyproject.toml`` at or above ``start``."""
    current = start.resolve()
    if current.is_file():
        current = current.parent
    for directory in (current, *current.parents):
        candidate = directory / "pyproject.toml"
        if candidate.is_file():
            return candidate
    return None


def load_config(start: str | Path = ".") -> LintConfig:
    """Load ``[tool.simlint]`` from the nearest pyproject.toml;
    defaults when there is none."""
    pyproject = find_pyproject(Path(start))
    if pyproject is None:
        return LintConfig()
    with open(pyproject, "rb") as fh:
        data = tomllib.load(fh)
    section = data.get("tool", {}).get("simlint", {})
    return config_from_mapping(section, root=str(pyproject.parent))
