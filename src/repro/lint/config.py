"""simlint configuration: defaults here, overrides in ``pyproject.toml``.

Everything under ``[tool.simlint]`` maps onto :class:`LintConfig`; the
shipped defaults describe *this* repository (its layer order, its
charging idiom), so external callers and fixtures override them
explicitly.
"""

from __future__ import annotations

import tomllib
from dataclasses import dataclass, field, replace
from pathlib import Path

#: The substrate layering of docs/architecture.md, lowest first.  A
#: module in layer N may import layers < N (module-level imports only;
#: ``if TYPE_CHECKING`` and function-scoped imports are exempt — see
#: the LAYER rule).
DEFAULT_LAYER_ORDER = (
    "units",
    "errors",
    "simtime",
    "storage",
    "buffer",
    "objects",
    "index",
    "txn",
    "stats",
    "derby",
    "exec",
    "cluster",
    "oo7",
    "oql",
    "opt",
    "recovery",
    "bench",
    "service",
    "dist",
    "analysis",
    "lint",
    "cli",
    "__main__",
)

#: Packages whose functions must charge the clock/counters when they
#: touch pages, handles or RPC paths (the CHARGE rule's scope).
DEFAULT_CHARGE_PACKAGES = ("storage", "buffer", "exec", "objects")

#: Calling a method with one of these names counts as touching a costed
#: resource (page path, record path, handle path).
DEFAULT_TOUCH_METHODS = (
    "read_page",
    "write_page",
    "get_page",
    "peek_page",
    "iter_pages",
    "mark_dirty",
    "read_resolving",
    "read_record",
    "load",
    "unref",
    "unreference",
    "_page",
    "_file",
)

#: Reading or writing an attribute with one of these names counts as
#: touching raw storage/handle state directly.
DEFAULT_TOUCH_ATTRS = ("_durable", "_live", "_parked")

#: The charging idiom: these calls (SimClock) or any assignment through
#: an attribute chain containing ``counters`` (CounterSet) discharge the
#: CHARGE obligation.
DEFAULT_CHARGE_CALLS = ("charge_ms", "charge_us", "charge_s")
DEFAULT_COUNTER_NAMES = ("counters",)

#: (open, close) method-name pairs the PAIR rule tracks.
DEFAULT_PAIRS = (
    ("load", "unref"),
    ("acquire", "release_all"),
    ("pin", "unpin"),
)

#: Cleanup calls that must not be skippable by an earlier exception.
DEFAULT_CLEANUP_CALLS = ("release_all",)

#: Calls that ARE cooperative suspension points: the scheduler's own
#: primitives plus the voluntary session-level yields.  Seeds of the
#: may-yield closure (see ``repro.lint.callgraph``).
DEFAULT_YIELD_CALLS = (
    "yield_point",
    "batch_point",
    "wait_for_lock",
    "wait_for_admission",
    "pause",
    "backoff",
)

#: Calls that can suspend the caller *indirectly*: the pager path (a
#: client page fault hands the baton to the scheduler via the
#: ``on_fault`` hook) and lock acquisition (an incompatible ``acquire``
#: parks the session on the lock queue).
DEFAULT_FAULT_CALLS = (
    "get_page",
    "read_page",
    "read_resolving",
    "read_record",
    "load",
    "borrow",
    "acquire",
)

#: Packages whose shared server-tier state the ATOM rule protects.
DEFAULT_ATOM_PACKAGES = ("service", "txn", "dist", "recovery", "buffer")

#: Attribute names that hold shared server-tier state: scheduler run
#: queues, lock tables, buffer tables, WAL buffers, governor counters,
#: 2PC decision logs.  A read-modify-write of ``<recv>.<attr>`` that
#: spans a may-yield call needs a guard or a justified suppression.
DEFAULT_ATOM_STATE_ATTRS = (
    # scheduler
    "_tasks",
    "_blocked_txns",
    "_blocked_admission",
    "_rr_next",
    "context_switches",
    "batch_yields",
    # lock manager
    "granted",
    "queue",
    "_queue",
    "_active",
    # buffer / WAL
    "records",
    "pending_bytes",
    "dirty_pages",
    "durable_lsn",
    # txn manager / governor
    "_next_txn_id",
    "committed",
    "aborted",
    "_guards",
    "_cancelled",
    "interrupts",
    "admissions",
    "queued_admissions",
    "max_queue_depth",
    # 2PC
    "branches",
    "staged",
    "acked_globals",
    "write_log",
    "seen",
)

#: A ``with`` statement whose context chain contains one of these names
#: is a critical bracket for ATOM (``with self._cv: ...``).
DEFAULT_ATOM_GUARDS = ("_cv", "lock", "mutex", "_mutex", "guard")

#: An explicit lock acquisition earlier in the function also counts as
#: holding the bracket (strict-2PL code paths).
DEFAULT_ATOM_LOCK_CALLS = ("acquire",)

#: PROTO txn-lifecycle vocabulary.
DEFAULT_PROTO_BEGIN_CALLS = ("begin",)
DEFAULT_PROTO_COMMIT_CALLS = ("commit",)
DEFAULT_PROTO_ABORT_CALLS = ("abort", "rollback")
#: ``with``-context call names that own completion themselves: a txn
#: begun as ``with txm.begin(...)`` / ``with session.transaction()``
#: commits or aborts in ``__exit__``, so the body owes nothing.
DEFAULT_PROTO_TXN_CONTEXTS = ("begin", "transaction")
#: WAL record kinds whose append must be followed by a flush on the
#: same log before the function returns (the force-write points).
DEFAULT_PROTO_FORCED_KINDS = ("commit", "prepare", "checkpoint")
#: Calls that stage a 2PC prepare round.
DEFAULT_PROTO_PREPARE_CALLS = ("_make_prepare", "prepare")
#: Receiver-chain component naming the coordinator decision log.
DEFAULT_PROTO_DECISION_CHAINS = ("decision_log",)
#: The only calls allowed to take a ``resolve_in_doubt=`` argument.
DEFAULT_PROTO_RESTART_CALLS = ("restart",)
#: Calls that apply a failover promotion (rewrite the shard route to a
#: new primary).  Each must be fenced: an ``"epoch"`` record appended
#: *and flushed* through a decision-log chain earlier in the function.
DEFAULT_PROTO_PROMOTE_CALLS = ("rewrite",)

#: Calls returning scoped handles that must not escape their ``with``
#: block (the ESCAPE rule).
DEFAULT_ESCAPE_CALLS = ("borrow",)
#: Container-mutation method names that count as storing the handle.
DEFAULT_ESCAPE_SINKS = (
    "append",
    "add",
    "insert",
    "extend",
    "appendleft",
    "setdefault",
    "push",
)


@dataclass(frozen=True)
class LintConfig:
    """Resolved simlint configuration."""

    paths: tuple[str, ...] = ("src/repro",)
    select: tuple[str, ...] = (
        "DET",
        "CHARGE",
        "LAYER",
        "PAIR",
        "EXC",
        "ATOM",
        "PROTO",
        "ESCAPE",
    )
    baseline: str | None = None
    #: Root package whose first path component names the layer.
    root_package: str = "repro"
    layer_order: tuple[str, ...] = DEFAULT_LAYER_ORDER
    #: Extra allowed upward edges, package -> importable packages.
    layer_allow: dict[str, tuple[str, ...]] = field(default_factory=dict)
    charge_packages: tuple[str, ...] = DEFAULT_CHARGE_PACKAGES
    charge_touch_methods: tuple[str, ...] = DEFAULT_TOUCH_METHODS
    charge_touch_attrs: tuple[str, ...] = DEFAULT_TOUCH_ATTRS
    charge_calls: tuple[str, ...] = DEFAULT_CHARGE_CALLS
    counter_names: tuple[str, ...] = DEFAULT_COUNTER_NAMES
    pair_pairs: tuple[tuple[str, str], ...] = DEFAULT_PAIRS
    cleanup_calls: tuple[str, ...] = DEFAULT_CLEANUP_CALLS
    yield_calls: tuple[str, ...] = DEFAULT_YIELD_CALLS
    fault_calls: tuple[str, ...] = DEFAULT_FAULT_CALLS
    atom_packages: tuple[str, ...] = DEFAULT_ATOM_PACKAGES
    atom_state_attrs: tuple[str, ...] = DEFAULT_ATOM_STATE_ATTRS
    atom_guards: tuple[str, ...] = DEFAULT_ATOM_GUARDS
    atom_lock_calls: tuple[str, ...] = DEFAULT_ATOM_LOCK_CALLS
    proto_begin_calls: tuple[str, ...] = DEFAULT_PROTO_BEGIN_CALLS
    proto_commit_calls: tuple[str, ...] = DEFAULT_PROTO_COMMIT_CALLS
    proto_abort_calls: tuple[str, ...] = DEFAULT_PROTO_ABORT_CALLS
    proto_txn_contexts: tuple[str, ...] = DEFAULT_PROTO_TXN_CONTEXTS
    proto_forced_kinds: tuple[str, ...] = DEFAULT_PROTO_FORCED_KINDS
    proto_prepare_calls: tuple[str, ...] = DEFAULT_PROTO_PREPARE_CALLS
    proto_decision_chains: tuple[str, ...] = DEFAULT_PROTO_DECISION_CHAINS
    proto_restart_calls: tuple[str, ...] = DEFAULT_PROTO_RESTART_CALLS
    proto_promote_calls: tuple[str, ...] = DEFAULT_PROTO_PROMOTE_CALLS
    escape_calls: tuple[str, ...] = DEFAULT_ESCAPE_CALLS
    escape_sinks: tuple[str, ...] = DEFAULT_ESCAPE_SINKS
    #: Directory paths are made relative to; set by load_config.
    root: str = "."


def _tuple(value) -> tuple:
    if isinstance(value, (list, tuple)):
        return tuple(value)
    raise TypeError(f"expected a list, got {value!r}")


def config_from_mapping(data: dict, root: str = ".") -> LintConfig:
    """Build a config from a ``[tool.simlint]`` mapping."""
    config = LintConfig(root=root)
    simple = {
        "paths": _tuple,
        "select": _tuple,
        "layer_order": _tuple,
        "charge_packages": _tuple,
        "charge_touch_methods": _tuple,
        "charge_touch_attrs": _tuple,
        "charge_calls": _tuple,
        "counter_names": _tuple,
        "cleanup_calls": _tuple,
        "yield_calls": _tuple,
        "fault_calls": _tuple,
        "atom_packages": _tuple,
        "atom_state_attrs": _tuple,
        "atom_guards": _tuple,
        "atom_lock_calls": _tuple,
        "proto_begin_calls": _tuple,
        "proto_commit_calls": _tuple,
        "proto_abort_calls": _tuple,
        "proto_txn_contexts": _tuple,
        "proto_forced_kinds": _tuple,
        "proto_prepare_calls": _tuple,
        "proto_decision_chains": _tuple,
        "proto_restart_calls": _tuple,
        "proto_promote_calls": _tuple,
        "escape_calls": _tuple,
        "escape_sinks": _tuple,
        "baseline": str,
        "root_package": str,
    }
    updates: dict = {}
    for key, convert in simple.items():
        if key in data:
            updates[key] = convert(data[key])
    if "pair_pairs" in data:
        updates["pair_pairs"] = tuple(
            (str(open_name), str(close_name))
            for open_name, close_name in data["pair_pairs"]
        )
    if "layer_allow" in data:
        updates["layer_allow"] = {
            str(k): _tuple(v) for k, v in data["layer_allow"].items()
        }
    return replace(config, **updates)


def find_pyproject(start: Path) -> Path | None:
    """Nearest ``pyproject.toml`` at or above ``start``."""
    current = start.resolve()
    if current.is_file():
        current = current.parent
    for directory in (current, *current.parents):
        candidate = directory / "pyproject.toml"
        if candidate.is_file():
            return candidate
    return None


def load_config(start: str | Path = ".") -> LintConfig:
    """Load ``[tool.simlint]`` from the nearest pyproject.toml;
    defaults when there is none."""
    pyproject = find_pyproject(Path(start))
    if pyproject is None:
        return LintConfig()
    with open(pyproject, "rb") as fh:
        data = tomllib.load(fh)
    section = data.get("tool", {}).get("simlint", {})
    return config_from_mapping(section, root=str(pyproject.parent))
