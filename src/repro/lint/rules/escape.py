"""ESCAPE — borrowed handles must not outlive their ``with`` block.

``ObjectManager.borrow(rid)`` is the exception-safe load/unref bracket:
the handle it yields pins a page frame for exactly the ``with`` body.
A handle that *escapes* — returned, yielded, stored into a container or
attribute, or used after the block — is unpinned the moment the block
exits, so every later dereference reads a frame the buffer pool is free
to evict: a stale read that no test catches until the cache is small.

For every ``with <...>.borrow(...) as h:`` this rule flags, inside the
block:

* ``return h`` / ``yield h`` (including ``h`` nested in a
  tuple/list/dict/set literal) — returning a *derived value*
  (``return om.get_attr(h, ...)``) is fine, the handle is consumed
  while still pinned;
* ``<container-or-attribute> = h`` (or a literal containing ``h``)
  where the target is an attribute or subscript — the store outlives
  the block;
* ``xs.append(h)`` and friends (``escape_sinks``) with ``h`` as a
  direct argument;

and, after the block, any read of ``h`` before it is rebound.

Suppressions carry ``# simlint: ok[ESCAPE] <why>``.
"""

from __future__ import annotations

import ast

from repro.lint.config import LintConfig
from repro.lint.findings import Finding
from repro.lint.project import FunctionInfo, Project, call_name

NAME = "ESCAPE"


def _units(project: Project) -> list[tuple[FunctionInfo, str, ast.AST]]:
    out = []
    for info in project.functions:
        out.append((info, info.qualname, info.node))
        for sub in ast.walk(info.node):
            if (
                isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef))
                and sub is not info.node
            ):
                out.append((info, f"{info.qualname}.{sub.name}", sub))
    return out


def _own_nodes(node: ast.AST) -> list[ast.AST]:
    out: list[ast.AST] = []

    def walk(n: ast.AST, top: bool) -> None:
        if not top and isinstance(
            n, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            return
        out.append(n)
        for child in ast.iter_child_nodes(n):
            walk(child, False)

    walk(node, True)
    return out


def _mentions_handle(value: ast.AST, handle: str) -> bool:
    """Is the value the handle itself, or a literal container holding
    it?  A call *consuming* the handle does not count — its result is a
    derived value, produced while the handle is still pinned."""
    if isinstance(value, ast.Name):
        return value.id == handle
    if isinstance(value, (ast.Tuple, ast.List, ast.Set)):
        return any(_mentions_handle(e, handle) for e in value.elts)
    if isinstance(value, ast.Dict):
        return any(
            v is not None and _mentions_handle(v, handle)
            for v in [*value.keys, *value.values]
        )
    if isinstance(value, ast.Starred):
        return _mentions_handle(value.value, handle)
    return False


def _check_block(
    info: FunctionInfo,
    symbol: str,
    handle: str,
    block: ast.With | ast.AsyncWith,
    config: LintConfig,
    findings: list[Finding],
) -> None:
    sinks = set(config.escape_sinks)

    def flag(node: ast.AST, how: str) -> None:
        findings.append(
            Finding(
                rule=NAME,
                path=info.module.path,
                line=node.lineno,
                col=node.col_offset,
                message=(
                    f"borrowed handle `{handle}` {how}; the handle is "
                    "unpinned when the with block exits, so any later "
                    "use reads an evictable frame — extract the value "
                    "inside the block instead, or justify with "
                    "`# simlint: ok[ESCAPE] <why>`"
                ),
                symbol=symbol,
            )
        )

    for stmt in block.body:
        for node in _own_nodes(stmt):
            if isinstance(node, ast.Return):
                if node.value is not None and _mentions_handle(
                    node.value, handle
                ):
                    flag(node, "is returned out of its with block")
            elif isinstance(node, (ast.Yield, ast.YieldFrom)):
                if node.value is not None and _mentions_handle(
                    node.value, handle
                ):
                    flag(node, "is yielded out of its with block")
            elif isinstance(node, ast.Assign):
                if _mentions_handle(node.value, handle) and any(
                    isinstance(t, (ast.Attribute, ast.Subscript))
                    for t in node.targets
                ):
                    flag(node, "is stored into longer-lived state")
            elif isinstance(node, ast.Call):
                name = call_name(node)
                if name in sinks and any(
                    _mentions_handle(arg, handle) for arg in node.args
                ):
                    flag(node, f"is stored via {name}() into a container")


def check(project: Project, config: LintConfig) -> list[Finding]:
    findings: list[Finding] = []
    borrow_names = set(config.escape_calls)
    for info, qualname, unit in _units(project):
        symbol = f"{info.module.name}:{qualname}"
        body = getattr(unit, "body", [])
        nodes = _own_nodes(unit)
        for node in nodes:
            if not isinstance(node, (ast.With, ast.AsyncWith)):
                continue
            for item in node.items:
                ctx = item.context_expr
                if not (
                    isinstance(ctx, ast.Call)
                    and call_name(ctx) in borrow_names
                ):
                    continue
                if not isinstance(item.optional_vars, ast.Name):
                    continue
                handle = item.optional_vars.id
                _check_block(info, symbol, handle, node, config, findings)

                # use after the block: first mention of the handle past
                # the block's end, unless it is a rebinding
                end = node.end_lineno or node.lineno
                later = sorted(
                    (
                        n
                        for n in nodes
                        if isinstance(n, ast.Name)
                        and n.id == handle
                        and n.lineno > end
                    ),
                    key=lambda n: (n.lineno, n.col_offset),
                )
                if later and isinstance(later[0].ctx, ast.Load):
                    findings.append(
                        Finding(
                            rule=NAME,
                            path=info.module.path,
                            line=later[0].lineno,
                            col=later[0].col_offset,
                            message=(
                                f"borrowed handle `{handle}` used after "
                                f"its with block (closed on line {end}); "
                                "the frame is unpinned and may be "
                                "evicted — move the use inside the "
                                "block, or justify with "
                                "`# simlint: ok[ESCAPE] <why>`"
                            ),
                            symbol=symbol,
                        )
                    )
    return findings
