"""LAYER — the architecture doc's import DAG, enforced.

``docs/architecture.md`` fixes a substrate order (units → errors →
simtime → storage → buffer → objects → ... → service → cli) and the
cost model depends on it: a lower layer importing a higher one creates
a cycle through which costs can be charged twice or not at all, and
makes the per-layer fault accounting unattributable.

The rule checks **module-level imports only**.  Two escape hatches are
deliberate and free:

* ``if TYPE_CHECKING:`` blocks — annotations are not wiring;
* function-scoped imports — deferred runtime wiring (e.g. recovery's
  restart hook looking up the service) is allowed because it cannot
  create an import cycle at module load.

Additional allowed upward edges can be granted per package with
``layer_allow`` in ``[tool.simlint]``; packages missing from
``layer_order`` are themselves flagged so the config cannot rot.
"""

from __future__ import annotations

import ast

from repro.lint.config import LintConfig
from repro.lint.findings import Finding
from repro.lint.project import Module, Project

NAME = "LAYER"


def _mentions_type_checking(test: ast.AST) -> bool:
    for node in ast.walk(test):
        if isinstance(node, ast.Name) and node.id == "TYPE_CHECKING":
            return True
        if isinstance(node, ast.Attribute) and node.attr == "TYPE_CHECKING":
            return True
    return False


class _ImportCollector(ast.NodeVisitor):
    """Module-level imports: dotted target names with their nodes.

    Skips function bodies entirely and the body (not else) of
    ``if TYPE_CHECKING:``.
    """

    def __init__(self) -> None:
        self.imports: list[tuple[ast.stmt, str]] = []

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        return  # function-scoped imports are the sanctioned escape hatch

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        return

    def visit_If(self, node: ast.If) -> None:
        if _mentions_type_checking(node.test):
            for stmt in node.orelse:
                self.visit(stmt)
        else:
            self.generic_visit(node)

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self.imports.append((node, alias.name))

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        # encoded as level + base; resolved later against the importing
        # module's dotted name (also handles `from repro import exec`).
        self.imports.append((node, f"\x00{node.level}\x00{node.module or ''}"))


def _resolve_from(module: Module, level: int, base: str) -> str:
    """Absolute dotted module path for a (possibly relative) import."""
    if level == 0:
        return base
    parts = module.name.split(".")
    # level=1 strips the module's own name, leaving its package; each
    # further level strips one more package.
    anchor = parts[: len(parts) - level]
    if base:
        anchor.append(base)
    return ".".join(anchor)


def _target_packages(
    module: Module, node: ast.stmt, spec: str, root: str
) -> list[str]:
    """Layer packages an import statement pulls in (empty for external
    modules)."""
    if spec.startswith("\x00"):
        _, level, base = spec.split("\x00")
        resolved = _resolve_from(module, int(level), base)
        assert isinstance(node, ast.ImportFrom)
        if resolved == root:
            # ``from repro import exec``: the aliases are the packages.
            return [alias.name for alias in node.names]
        dotted = resolved.split(".")
    else:
        dotted = spec.split(".")
    if dotted[0] != root:
        return []
    return [dotted[1]] if len(dotted) > 1 else []


def check(project: Project, config: LintConfig) -> list[Finding]:
    findings: list[Finding] = []
    order = {package: i for i, package in enumerate(config.layer_order)}
    root = config.root_package
    for module in project.modules:
        package = module.package
        if not package:
            continue
        collector = _ImportCollector()
        collector.visit(module.tree)
        importer_idx = order.get(package)
        if importer_idx is None and package != root:
            findings.append(
                Finding(
                    rule=NAME,
                    path=module.path,
                    line=1,
                    col=0,
                    message=(
                        f"package '{package}' is not in layer_order; add it "
                        "to [tool.simlint] so its imports are checked"
                    ),
                    symbol=module.name,
                )
            )
            continue
        allow = set(config.layer_allow.get(package, ()))
        for node, spec in collector.imports:
            for target in _target_packages(module, node, spec, root):
                if target == package or target in allow:
                    continue
                target_idx = order.get(target)
                if target_idx is None:
                    # importing repro.<module>.py directly from the root
                    # (e.g. ``from repro import cli``) — the stem is the
                    # layer, already covered; anything else is unknown.
                    findings.append(
                        Finding(
                            rule=NAME,
                            path=module.path,
                            line=node.lineno,
                            col=node.col_offset,
                            message=(
                                f"import target '{root}.{target}' is not in "
                                "layer_order; add it to [tool.simlint]"
                            ),
                            symbol=f"{module.name} -> {target}",
                        )
                    )
                elif package == root:
                    continue  # the root __init__ re-exports freely
                elif target_idx > importer_idx:
                    findings.append(
                        Finding(
                            rule=NAME,
                            path=module.path,
                            line=node.lineno,
                            col=node.col_offset,
                            message=(
                                f"'{package}' (layer {importer_idx}) may not "
                                f"import '{target}' (layer {target_idx}); "
                                "the substrate DAG in docs/architecture.md "
                                "only allows downward imports"
                            ),
                            symbol=f"{module.name} -> {target}",
                        )
                    )
    return findings
