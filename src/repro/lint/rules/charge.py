"""CHARGE — cost completeness in the measured substrates.

Figures 6–9 of the paper plot simulated time and I/O counters; they are
only meaningful if every page access, handle operation and RPC on a
measured path charges the :class:`SimClock` or bumps a
:class:`CounterSet`.  This rule walks every *public* function in the
charge packages (``storage``, ``buffer``, ``exec``, ``objects`` by
default), asks two questions of the name-resolved call graph:

1. does the function *touch* a costed resource (calls a page/handle
   method from ``charge_touch_methods``, or reads raw storage state
   from ``charge_touch_attrs``), directly or through project callees?
2. can it *reach* a ``charge_ms``/``charge_us``/``charge_s`` call or a
   ``counters.<field> += ...`` bump the same way?

and flags functions where (1) holds but (2) does not.  Because calls
are resolved by bare name to every project function with that name,
reachability is over-approximated: the rule prefers missing a
violation to inventing one.  Deliberately free paths (debug
introspection, crash simulation) carry ``# simlint: ok[CHARGE]``
suppressions stating *why* they are free.

Private helpers (leading underscore), dunders and properties are
skipped — their cost obligations belong to the public entry points
that call them.
"""

from __future__ import annotations

from repro.lint.config import LintConfig
from repro.lint.findings import Finding
from repro.lint.project import Project

NAME = "CHARGE"


def check(project: Project, config: LintConfig) -> list[Finding]:
    findings: list[Finding] = []
    charge_packages = set(config.charge_packages)
    for info in project.functions:
        if info.module.package not in charge_packages:
            continue
        name = info.node.name
        if name.startswith("_") or info.is_property:
            continue
        reason = project.touches(info)
        if reason is None:
            continue
        if project.reaches_charge(info):
            continue
        findings.append(
            Finding(
                rule=NAME,
                path=info.module.path,
                line=info.node.lineno,
                col=info.node.col_offset,
                message=(
                    f"{info.qualname}() {reason} but cannot reach "
                    "charge_ms/charge_us/charge_s or a CounterSet bump; "
                    "either charge the cost or justify with "
                    "`# simlint: ok[CHARGE] <why it is free>`"
                ),
                symbol=f"{info.module.name}:{info.qualname}",
            )
        )
    return findings
