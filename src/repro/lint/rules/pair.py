"""PAIR — paired resources released on every exit path.

A leaked object handle pins a page frame and skews every later fault
count; a lock that survives its transaction deadlocks the next client.
For each configured (open, close) method-name pair — by default
``load``/``unref``, ``acquire``/``release_all``, ``pin``/``unpin`` —
this rule does an intra-function analysis:

* a close call is **protected** iff it sits in a ``finally`` block or
  an ``except`` handler;
* an open call with a later *unprotected* close in the same function is
  flagged when any call (or ``yield``) between them can raise and skip
  the close.

Open calls with no close in the same function are ownership transfers
(e.g. a constructor storing the handle) and are not flagged — the PAIR
rule is about functions that *intend* to clean up but can be skipped
past, not about escape analysis.

Separately, ``cleanup_calls`` (default ``release_all``) must be
unskippable wherever they appear: an unprotected ``release_all`` with
any raising call before it in the function is flagged even with no
matching ``acquire`` in sight, because lock lifetimes span functions.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.lint.config import LintConfig
from repro.lint.findings import Finding
from repro.lint.project import Project, call_name

NAME = "PAIR"


@dataclass
class _Event:
    """One call or yield inside a function, in source order."""

    name: str | None      # callee bare name; None for yield
    line: int
    col: int
    protected: bool       # inside a finally block or except handler


def _collect_events(
    body: list[ast.stmt], protected: bool, out: list[_Event]
) -> None:
    for stmt in body:
        _collect_from_node(stmt, protected, out)


def _collect_from_node(node: ast.AST, protected: bool, out: list[_Event]) -> None:
    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
        return  # nested defs execute later; not part of this path
    if isinstance(node, ast.Try):
        _collect_events(node.body, protected, out)
        _collect_events(node.orelse, protected, out)
        for handler in node.handlers:
            _collect_events(handler.body, True, out)
        _collect_events(node.finalbody, True, out)
        return
    if isinstance(node, ast.Call):
        out.append(
            _Event(call_name(node), node.lineno, node.col_offset, protected)
        )
    elif isinstance(node, (ast.Yield, ast.YieldFrom)):
        out.append(_Event(None, node.lineno, node.col_offset, protected))
    for child in ast.iter_child_nodes(node):
        _collect_from_node(child, protected, out)


def _hazard_between(events: list[_Event], start: int, end: int, ignore: set[str]) -> bool:
    """Is there a call (or yield) strictly between lines start and end
    that could raise and skip the close?"""
    for event in events:
        if start < event.line < end and (event.name is None or event.name not in ignore):
            return True
    return False


def _hazard_before(events: list[_Event], end: int, ignore: set[str]) -> bool:
    for event in events:
        if event.line < end and (event.name is None or event.name not in ignore):
            return True
    return False


def _nested_defs(node: ast.AST) -> list[ast.FunctionDef | ast.AsyncFunctionDef]:
    return [
        sub
        for sub in ast.walk(node)
        if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)) and sub is not node
    ]


def check(project: Project, config: LintConfig) -> list[Finding]:
    findings: list[Finding] = []
    cleanup = set(config.cleanup_calls)
    units: list[tuple] = []
    for info in project.functions:
        units.append((info, info.qualname, info.node))
        # nested defs (closures, local helpers) are separate execution
        # units: a leak inside one is a leak every time it is called.
        for nested in _nested_defs(info.node):
            units.append((info, f"{info.qualname}.{nested.name}", nested))
    for info, qualname, node in units:
        events: list[_Event] = []
        _collect_events(node.body, False, events)
        events.sort(key=lambda e: (e.line, e.col))
        symbol = f"{info.module.name}:{qualname}"

        for open_name, close_name in config.pair_pairs:
            opens = [e for e in events if e.name == open_name]
            closes = [e for e in events if e.name == close_name]
            if not opens or not closes:
                continue
            ignore = {open_name, close_name}
            for open_event in opens:
                after = [c for c in closes if c.line > open_event.line]
                if not after:
                    continue  # ownership transferred out of this function
                close_event = after[0]
                if close_event.protected:
                    continue
                if _hazard_between(
                    events, open_event.line, close_event.line, ignore
                ):
                    findings.append(
                        Finding(
                            rule=NAME,
                            path=info.module.path,
                            line=open_event.line,
                            col=open_event.col,
                            message=(
                                f"{open_name}() here is paired with "
                                f"{close_name}() on line {close_event.line}, "
                                "but a call in between can raise and skip "
                                "it; move the close into try/finally (or "
                                "use a context manager)"
                            ),
                            symbol=symbol,
                        )
                    )

        for close_name in sorted(cleanup):
            for close_event in events:
                if close_event.name != close_name or close_event.protected:
                    continue
                if _hazard_before(events, close_event.line, {close_name}):
                    findings.append(
                        Finding(
                            rule=NAME,
                            path=info.module.path,
                            line=close_event.line,
                            col=close_event.col,
                            message=(
                                f"{close_name}() can be skipped if an "
                                "earlier call raises; cleanup calls must "
                                "run from a finally block or an exception "
                                "path must be shown safe with "
                                "`# simlint: ok[PAIR] <why>`"
                            ),
                            symbol=symbol,
                        )
                    )
    return findings
