"""EXC — over-broad ``except`` clauses.

Aborted transactions, lock timeouts and injected crash points all
travel as ``repro.errors`` exceptions.  A bare ``except:`` or an
``except Exception`` that does not re-raise can swallow them, turning
a deliberately failed run into a silently wrong result row.

Flagged:

* ``except:`` (bare) — always;
* ``except Exception`` / ``except BaseException`` (alone or in a
  tuple) whose handler contains no ``raise``.

A handler that re-raises anywhere in its body (``except BaseException:
cancel(); raise``) is the sanctioned cleanup idiom and is not flagged.
Trampolines that must capture arbitrary task failures justify
themselves with ``# simlint: ok[EXC] <why>``.
"""

from __future__ import annotations

import ast

from repro.lint.config import LintConfig
from repro.lint.findings import Finding
from repro.lint.project import Module, Project

NAME = "EXC"

_BROAD = {"Exception", "BaseException"}


def _broad_names(type_node: ast.AST | None) -> list[str]:
    """Over-broad exception names in an ``except`` type expression."""
    if type_node is None:
        return []
    nodes = type_node.elts if isinstance(type_node, ast.Tuple) else [type_node]
    out = []
    for node in nodes:
        if isinstance(node, ast.Name) and node.id in _BROAD:
            out.append(node.id)
        elif isinstance(node, ast.Attribute) and node.attr in _BROAD:
            out.append(node.attr)
    return out


def _reraises(handler: ast.ExceptHandler) -> bool:
    for stmt in handler.body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Raise):
                return True
    return False


class _ExcVisitor(ast.NodeVisitor):
    def __init__(self, module: Module):
        self.module = module
        self.findings: list[Finding] = []
        self._symbol_stack: list[str] = []

    def _flag(self, node: ast.ExceptHandler, message: str) -> None:
        symbol = ".".join(self._symbol_stack) or "<module>"
        self.findings.append(
            Finding(
                rule=NAME,
                path=self.module.path,
                line=node.lineno,
                col=node.col_offset,
                message=message,
                symbol=f"{self.module.name}:{symbol}",
            )
        )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._symbol_stack.append(node.name)
        self.generic_visit(node)
        self._symbol_stack.pop()

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._symbol_stack.append(node.name)
        self.generic_visit(node)
        self._symbol_stack.pop()

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self._flag(
                node,
                "bare `except:` swallows every exception, including "
                "repro.errors types like TransactionAborted; name the "
                "exceptions this handler is for",
            )
        else:
            broad = _broad_names(node.type)
            if broad and not _reraises(node):
                self._flag(
                    node,
                    f"`except {broad[0]}` without a re-raise can swallow "
                    "repro.errors types (aborts, lock timeouts, crash "
                    "points); catch specific exceptions or re-raise",
                )
        self.generic_visit(node)


def check(project: Project, config: LintConfig) -> list[Finding]:
    findings: list[Finding] = []
    for module in project.modules:
        visitor = _ExcVisitor(module)
        visitor.visit(module.tree)
        findings.extend(visitor.findings)
    return findings
