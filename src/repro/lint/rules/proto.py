"""PROTO — protocol state machines: txn lifecycle, WAL force, 2PC.

Three small per-protocol state machines, checked per function against
the source and the shared call graph:

**Txn lifecycle.**  A ``begin()`` whose result stays local must reach
exactly one of ``commit()``/``abort()``:

* *leak* — some normal path can exit with the transaction still open;
* *exception leak* — a call between ``begin`` and the completion can
  raise with no enclosing ``try`` whose handler or ``finally``
  completes the transaction (locks survive, the next client
  deadlocks);
* *double completion* — a second ``commit``/``abort`` on a path where
  the transaction is already definitely completed.

Ownership transfers are exempt: a begin used as a ``with`` context, or
whose result is stored into an attribute/container, returned, yielded
or handed to another function, is completed elsewhere (the ESCAPE and
PAIR rules guard those shapes).  An ``if`` whose test inspects
``.state`` (``if txn.state == "active": txn.abort()``) counts as an
unconditional completion — the condition *is* open-ness.  Lock-release
discipline (``release_all`` only from protected positions) is enforced
by the PAIR rule's cleanup check.

**WAL force rule.**  Appending a forced record kind (``"commit"``,
``"prepare"``, ``"checkpoint"``) obliges a later ``flush()`` on the
same log in the same function — the force-write point of the
write-ahead protocol.  ``release_all`` before that flush gives away
locks while the commit record is still volatile and is flagged too.

**2PC discipline.**  On any path that stages a prepare round
(``proto_prepare_calls`` or an append of a ``"prepare"`` record), a
decision-log write (append/flush through a ``decision_log`` chain)
must happen before any branch ``commit`` — the decision log *is* the
commit point of presumed-abort 2PC.  And ``resolve_in_doubt=`` may
only be passed to ``restart()``: in-doubt transactions are resolved by
recovery, never ad hoc.

**Failover fencing.**  A promotion application
(``proto_promote_calls``, i.e. the route rewrite installing a new
primary) must be fenced: earlier in the same function an ``"epoch"``
record is appended through a decision-log chain *and* that log is
flushed before the rewrite.  Once the epoch record is durable the old
primary is deposed even if it never hears so — promoting first would
let an amnesiac coordinator resurrect a zombie under the old epoch.

Suppressions carry ``# simlint: ok[PROTO] <why>``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.lint.config import LintConfig
from repro.lint.findings import Finding
from repro.lint.project import FunctionInfo, Project, _dotted, call_name

NAME = "PROTO"

_OPEN = "open"
_CLOSED = "closed"


def _units(project: Project) -> list[tuple[FunctionInfo, str, ast.AST]]:
    out = []
    for info in project.functions:
        out.append((info, info.qualname, info.node))
        for sub in ast.walk(info.node):
            if (
                isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef))
                and sub is not info.node
            ):
                out.append((info, f"{info.qualname}.{sub.name}", sub))
    return out


def _own_nodes(node: ast.AST) -> list[ast.AST]:
    """Every node of this unit, nested defs/lambdas excluded."""
    out: list[ast.AST] = []

    def walk(n: ast.AST, top: bool) -> None:
        if not top and isinstance(
            n, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            return
        out.append(n)
        for child in ast.iter_child_nodes(n):
            walk(child, False)

    walk(node, True)
    return out


# -- txn lifecycle -----------------------------------------------------------


@dataclass
class _BeginSite:
    call: ast.Call
    var: str | None            # local name holding the txn, if any
    recv: tuple[str, ...]      # receiver chain of the begin call
    #: literal ``isolation=`` keyword on the begin call (``"si"`` sites
    #: get the sharper leak message: an open SI transaction pins the
    #: MVCC garbage-collection horizon through its snapshot).
    isolation: str | None = None


class _TxnAnalysis:
    """State walk for one begin site: tracks {open, closed} along
    normal paths, records exits and double completions."""

    def __init__(self, site: _BeginSite, config: LintConfig):
        self.site = site
        self.config = config
        self.exit_states: set[str] = set()
        self.double: list[ast.Call] = []
        self._seen_begin = False

    # matching ------------------------------------------------------------

    def _is_completion(self, node: ast.Call) -> bool:
        name = call_name(node)
        if name not in (
            *self.config.proto_commit_calls,
            *self.config.proto_abort_calls,
        ):
            return False
        recv = tuple(_dotted(node.func))[:-1]
        if self.site.var is not None and recv == (self.site.var,):
            return True
        return bool(recv) and recv == self.site.recv

    def _completions_in(self, node: ast.AST) -> list[ast.Call]:
        found = []
        for sub in _own_nodes(node):
            if isinstance(sub, ast.Call) and self._is_completion(sub):
                found.append(sub)
        found.sort(key=lambda c: (c.lineno, c.col_offset))
        return found

    @staticmethod
    def _is_state_test(test: ast.AST) -> bool:
        return any(
            isinstance(sub, ast.Attribute) and sub.attr == "state"
            for sub in ast.walk(test)
        )

    # walking -------------------------------------------------------------

    def run(self, stmts: list[ast.stmt], state: frozenset) -> frozenset | None:
        """Returns the fall-through state set, or None if every path
        through these statements terminated (return/raise)."""
        cur: frozenset | None = state
        for stmt in stmts:
            if cur is None:
                break
            cur = self._stmt(stmt, cur)
        return cur

    def _apply_completions(
        self, node: ast.AST, state: frozenset
    ) -> frozenset:
        for comp in self._completions_in(node):
            if state == frozenset({_CLOSED}):
                self.double.append(comp)
            state = frozenset({_CLOSED})
        return state

    def _stmt(self, stmt: ast.stmt, state: frozenset) -> frozenset | None:
        if not self._seen_begin:
            # skip statements before the begin site; a compound
            # statement containing it is walked normally so the flag
            # flips at the inner assignment, not past the whole block
            if not any(sub is self.site.call for sub in ast.walk(stmt)):
                return state
            if not isinstance(
                stmt,
                (
                    ast.If,
                    ast.Try,
                    ast.While,
                    ast.For,
                    ast.AsyncFor,
                    ast.With,
                    ast.AsyncWith,
                ),
            ):
                # the walk starts with *no* transaction (empty state):
                # a begin inside a loop leaves the zero-iteration path
                # transaction-free, not open
                self._seen_begin = True
                return frozenset({_OPEN})

        if isinstance(stmt, ast.Return):
            if stmt.value is not None:
                state = self._apply_completions(stmt.value, state)
            self.exit_states |= state
            return None
        if isinstance(stmt, ast.Raise):
            return None  # exception path; the hazard check owns it
        if isinstance(stmt, (ast.Break, ast.Continue)):
            return state

        if isinstance(stmt, ast.If):
            if self._is_state_test(stmt.test) and self._completions_in(stmt):
                # `if txn.state == "active": txn.abort()` — the test is
                # exactly open-ness, so this completes unconditionally.
                return frozenset({_CLOSED})
            then = self.run(stmt.body, state)
            other = self.run(stmt.orelse, state)
            merged = frozenset()
            if then is not None:
                merged |= then
            if other is not None:
                merged |= other
            return merged if merged else None

        if isinstance(stmt, ast.Try):
            after_body = self.run(stmt.body, state)
            if after_body is not None and stmt.orelse:
                after_body = self.run(stmt.orelse, after_body)
            merged = frozenset()
            if after_body is not None:
                merged |= after_body
            handler_in = state | (after_body or frozenset())
            for handler in stmt.handlers:
                res = self.run(handler.body, frozenset(handler_in))
                if res is not None:
                    merged |= res
            if not merged:
                if stmt.finalbody:
                    self.run(stmt.finalbody, frozenset(handler_in))
                return None
            final = self.run(stmt.finalbody, merged)
            return final if stmt.finalbody else merged

        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            body_res = self.run(stmt.body, state)
            merged = state | (body_res or frozenset())
            if stmt.orelse:
                or_res = self.run(stmt.orelse, frozenset(merged))
                merged = or_res if or_res is not None else merged
            return frozenset(merged)

        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self.run(stmt.body, state)

        # flat statement: apply completions in source order
        return self._apply_completions(stmt, state)


def _find_begin_sites(
    unit: ast.AST, config: LintConfig
) -> list[_BeginSite]:
    """Begin calls in this unit whose result stays local (others are
    ownership transfers and exempt)."""
    begin_names = set(config.proto_begin_calls)
    with_contexts: set[int] = set()
    for node in _own_nodes(unit):
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                for sub in ast.walk(item.context_expr):
                    with_contexts.add(id(sub))

    sites: list[_BeginSite] = []
    assigned: dict[int, str | None] = {}
    escaped_vars: set[str] = set()
    for node in _own_nodes(unit):
        if isinstance(node, ast.Assign):
            value = node.value
            if (
                isinstance(value, ast.Call)
                and call_name(value) in begin_names
            ):
                if len(node.targets) == 1 and isinstance(
                    node.targets[0], ast.Name
                ):
                    assigned[id(value)] = node.targets[0].id
                else:
                    assigned[id(value)] = "\0escape"  # attribute/tuple target
    for node in _own_nodes(unit):
        if isinstance(node, ast.Call) and call_name(node) in begin_names:
            if id(node) in with_contexts:
                continue
            var = assigned.get(id(node))
            if var == "\0escape":
                continue
            recv = tuple(_dotted(node.func))[:-1]
            isolation = next(
                (
                    kw.value.value
                    for kw in node.keywords
                    if kw.arg == "isolation"
                    and isinstance(kw.value, ast.Constant)
                    and isinstance(kw.value.value, str)
                ),
                None,
            )
            sites.append(_BeginSite(node, var, recv, isolation))

    # escape analysis on the txn variables
    tracked = {s.var for s in sites if s.var is not None}
    if tracked:
        for node in _own_nodes(unit):
            if isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom)):
                value = getattr(node, "value", None)
                if value is not None:
                    for sub in ast.walk(value):
                        if (
                            isinstance(sub, ast.Name)
                            and sub.id in tracked
                        ):
                            escaped_vars.add(sub.id)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, (ast.Attribute, ast.Subscript)):
                        for sub in ast.walk(node.value):
                            if (
                                isinstance(sub, ast.Name)
                                and sub.id in tracked
                            ):
                                escaped_vars.add(sub.id)
            elif isinstance(node, ast.Call):
                # txn handed to another function transfers completion
                # duty with it; `txn` as the *receiver* of a call
                # (txn.read(...)) is not an escape.
                for arg in [*node.args, *[k.value for k in node.keywords]]:
                    if isinstance(arg, ast.Name) and arg.id in tracked:
                        escaped_vars.add(arg.id)
    return [s for s in sites if s.var is None or s.var not in escaped_vars]


def _check_txn(
    info: FunctionInfo,
    qualname: str,
    unit: ast.AST,
    config: LintConfig,
    findings: list[Finding],
) -> None:
    symbol = f"{info.module.name}:{qualname}"
    body = getattr(unit, "body", [])
    for site in _find_begin_sites(unit, config):
        analysis = _TxnAnalysis(site, config)
        fall = analysis.run(body, frozenset())
        if fall is not None:
            analysis.exit_states |= fall
        completions = analysis._completions_in(unit)

        if _OPEN in analysis.exit_states:
            what = (
                "never reaches commit()/abort()"
                if not completions
                else "can exit with the transaction still open on some path"
            )
            if site.isolation == "si":
                message = (
                    f'begin(isolation="si") here {what}; the leaked '
                    "transaction's snapshot pins the MVCC GC horizon, so "
                    "no version stashed after it can ever be swept; every "
                    "path must complete the transaction exactly once (or "
                    "transfer ownership) — justify with "
                    "`# simlint: ok[PROTO] <why>`"
                )
            else:
                message = (
                    f"begin() here {what}; every path must complete "
                    "the transaction exactly once (or transfer "
                    "ownership) — justify with "
                    "`# simlint: ok[PROTO] <why>`"
                )
            findings.append(
                Finding(
                    rule=NAME,
                    path=info.module.path,
                    line=site.call.lineno,
                    col=site.call.col_offset,
                    message=message,
                    symbol=symbol,
                )
            )
        elif completions:
            _check_txn_hazards(
                info, symbol, unit, site, completions, config, findings
            )

        for comp in analysis.double:
            findings.append(
                Finding(
                    rule=NAME,
                    path=info.module.path,
                    line=comp.lineno,
                    col=comp.col_offset,
                    message=(
                        "second commit()/abort() on a path where the "
                        "transaction begun on line "
                        f"{site.call.lineno} is already completed; "
                        "complete exactly once — justify with "
                        "`# simlint: ok[PROTO] <why>`"
                    ),
                    symbol=symbol,
                )
            )


def _check_txn_hazards(
    info: FunctionInfo,
    symbol: str,
    unit: ast.AST,
    site: _BeginSite,
    completions: list[ast.Call],
    config: LintConfig,
    findings: list[Finding],
) -> None:
    """Exception-leak check: a raising call between begin and the first
    completion with no enclosing try that completes on failure."""
    analysis = _TxnAnalysis(site, config)
    first_completion = completions[0].lineno

    protected_spans: list[tuple[int, int]] = []
    for node in _own_nodes(unit):
        if not isinstance(node, ast.Try):
            continue
        guard_nodes = [*node.handlers, *node.finalbody]
        if any(
            analysis._completions_in(g) for g in guard_nodes
        ):
            start = min(s.lineno for s in node.body)
            end = max(s.end_lineno or s.lineno for s in node.body)
            protected_spans.append((start, end))

    exempt = set(config.proto_begin_calls) | {
        c
        for c in (*config.proto_commit_calls, *config.proto_abort_calls)
    }
    for node in _own_nodes(unit):
        if not isinstance(node, ast.Call):
            continue
        if not (site.call.lineno < node.lineno < first_completion):
            continue
        name = call_name(node)
        if name in exempt:
            continue
        if any(lo <= node.lineno <= hi for lo, hi in protected_spans):
            continue
        findings.append(
            Finding(
                rule=NAME,
                path=info.module.path,
                line=site.call.lineno,
                col=site.call.col_offset,
                message=(
                    f"a call between begin() here and the completion on "
                    f"line {first_completion} (first: {name}() on line "
                    f"{node.lineno}) can raise and leak the open "
                    "transaction; wrap the region in try/except-abort "
                    "or use the transaction context manager — justify "
                    "with `# simlint: ok[PROTO] <why>`"
                ),
                symbol=symbol,
            )
        )
        return  # one finding per begin site


# -- WAL force rule ----------------------------------------------------------


def _string_args(call: ast.Call) -> list[str]:
    return [
        arg.value
        for arg in call.args
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str)
    ]


def _check_wal(
    info: FunctionInfo,
    qualname: str,
    unit: ast.AST,
    config: LintConfig,
    findings: list[Finding],
) -> None:
    symbol = f"{info.module.name}:{qualname}"
    forced = set(config.proto_forced_kinds)
    calls = [
        n
        for n in _own_nodes(unit)
        if isinstance(n, ast.Call) and call_name(n) is not None
    ]
    calls.sort(key=lambda c: (c.lineno, c.col_offset))
    for call in calls:
        if call_name(call) != "append":
            continue
        kinds = [s for s in _string_args(call) if s in forced]
        if not kinds:
            continue
        recv = tuple(_dotted(call.func))[:-1]
        if not recv:
            continue
        flush = next(
            (
                c
                for c in calls
                if call_name(c) == "flush"
                and tuple(_dotted(c.func))[:-1] == recv
                and c.lineno >= call.lineno
            ),
            None,
        )
        log = ".".join(recv)
        if flush is None:
            findings.append(
                Finding(
                    rule=NAME,
                    path=info.module.path,
                    line=call.lineno,
                    col=call.col_offset,
                    message=(
                        f"{log}.append(..., \"{kinds[0]}\", ...) is a "
                        f"forced record but {log}.flush() never follows "
                        "in this function; the WAL force-write rule "
                        "requires the record durable before the effect "
                        "is visible — justify with "
                        "`# simlint: ok[PROTO] <why>`"
                    ),
                    symbol=symbol,
                )
            )
            continue
        early_release = next(
            (
                c
                for c in calls
                if call_name(c) in config.cleanup_calls
                and call.lineno < c.lineno < flush.lineno
            ),
            None,
        )
        if early_release is not None:
            findings.append(
                Finding(
                    rule=NAME,
                    path=info.module.path,
                    line=early_release.lineno,
                    col=early_release.col_offset,
                    message=(
                        f"locks released before {log}.flush() on line "
                        f"{flush.lineno} makes the un-flushed "
                        f"\"{kinds[0]}\" record visible to other "
                        "sessions; release only after the force write — "
                        "justify with `# simlint: ok[PROTO] <why>`"
                    ),
                    symbol=symbol,
                )
            )


# -- 2PC discipline ----------------------------------------------------------


def _check_twopc(
    info: FunctionInfo,
    qualname: str,
    unit: ast.AST,
    config: LintConfig,
    findings: list[Finding],
) -> None:
    symbol = f"{info.module.name}:{qualname}"
    prepare_names = set(config.proto_prepare_calls)
    decision_chains = set(config.proto_decision_chains)
    commit_names = set(config.proto_commit_calls)
    restart_names = set(config.proto_restart_calls)

    prepare_lines: list[int] = []
    decision_lines: list[int] = []
    commit_refs: list[tuple[int, int, str]] = []
    call_funcs: set[int] = set()

    for node in _own_nodes(unit):
        if isinstance(node, ast.Call):
            call_funcs.add(id(node.func))
            name = call_name(node)
            recv = tuple(_dotted(node.func))[:-1]
            if name in prepare_names or (
                name == "append" and "prepare" in _string_args(node)
            ):
                prepare_lines.append(node.lineno)
            if name in ("append", "flush") and any(
                part in decision_chains for part in recv
            ):
                decision_lines.append(node.lineno)
            if name in commit_names:
                commit_refs.append((node.lineno, node.col_offset, "call"))
            for kw in node.keywords:
                if (
                    kw.arg == "resolve_in_doubt"
                    and name not in restart_names
                ):
                    findings.append(
                        Finding(
                            rule=NAME,
                            path=info.module.path,
                            line=node.lineno,
                            col=node.col_offset,
                            message=(
                                f"resolve_in_doubt= passed to {name}(); "
                                "in-doubt transactions are resolved only "
                                "through restart() recovery — justify "
                                "with `# simlint: ok[PROTO] <why>`"
                            ),
                            symbol=symbol,
                        )
                    )
    for node in _own_nodes(unit):
        # a branch commit handed around as a callback
        # (``cluster.call(node, branch.commit, ...)``) is still a
        # commit reference on this path
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.ctx, ast.Load)
            and node.attr in commit_names
            and id(node) not in call_funcs
        ):
            commit_refs.append((node.lineno, node.col_offset, "ref"))

    if not prepare_lines:
        return
    first_prepare = min(prepare_lines)
    for line, col, _kind in sorted(commit_refs):
        if line <= first_prepare:
            continue  # one-phase fast path before the prepare round
        if any(first_prepare < d < line for d in decision_lines):
            continue
        findings.append(
            Finding(
                rule=NAME,
                path=info.module.path,
                line=line,
                col=col,
                message=(
                    "branch commit reached after the prepare round on "
                    f"line {first_prepare} with no decision-log write in "
                    "between; under presumed-abort 2PC the decision log "
                    "is the commit point — append+flush the decision "
                    "first, or justify with `# simlint: ok[PROTO] <why>`"
                ),
                symbol=symbol,
            )
        )
        return


# -- failover fencing --------------------------------------------------------


def _check_failover(
    info: FunctionInfo,
    qualname: str,
    unit: ast.AST,
    config: LintConfig,
    findings: list[Finding],
) -> None:
    symbol = f"{info.module.name}:{qualname}"
    promote_names = set(config.proto_promote_calls)
    decision_chains = set(config.proto_decision_chains)

    promote_calls: list[tuple[int, int, str]] = []
    epoch_lines: list[int] = []
    flush_lines: list[int] = []
    for node in _own_nodes(unit):
        if not isinstance(node, ast.Call):
            continue
        name = call_name(node)
        recv = tuple(_dotted(node.func))[:-1]
        if name in promote_names:
            promote_calls.append((node.lineno, node.col_offset, name))
        on_decision_log = any(part in decision_chains for part in recv)
        if name == "append" and on_decision_log and (
            "epoch" in _string_args(node)
        ):
            epoch_lines.append(node.lineno)
        if name == "flush" and on_decision_log:
            flush_lines.append(node.lineno)

    for line, col, name in sorted(promote_calls):
        fences = [e for e in epoch_lines if e < line]
        fenced = any(
            e <= f < line for e in fences for f in flush_lines
        )
        if fenced:
            continue
        missing = (
            "no durable epoch fence" if not fences
            else f"the epoch record on line {fences[-1]} is never flushed"
        )
        findings.append(
            Finding(
                rule=NAME,
                path=info.module.path,
                line=line,
                col=col,
                message=(
                    f"{name}() applies a promotion with {missing} "
                    "before it; append+flush the \"epoch\" record to "
                    "the decision log first — once durable it deposes "
                    "the old primary even across a coordinator restart "
                    "— or justify with `# simlint: ok[PROTO] <why>`"
                ),
                symbol=symbol,
            )
        )


def check(project: Project, config: LintConfig) -> list[Finding]:
    findings: list[Finding] = []
    for info, qualname, unit in _units(project):
        _check_txn(info, qualname, unit, config, findings)
        _check_wal(info, qualname, unit, config, findings)
        _check_twopc(info, qualname, unit, config, findings)
        _check_failover(info, qualname, unit, config, findings)
    return findings
