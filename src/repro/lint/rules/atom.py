"""ATOM — no read-modify-write across a yield point without a bracket.

The cooperative scheduler interleaves sessions at yield points: page
faults, lock waits, batch boundaries and voluntary pauses.  Server-tier
state shared between sessions — scheduler run queues, lock tables,
buffer tables, WAL buffers, governor counters, 2PC decision logs — is
only safe to read-modify-write when no other session can run in
between.  A sequence

    v = self._tasks[...]        # read
    self.locks.acquire(...)     # may suspend; another session runs
    self._tasks[...] = v + 1    # write of the now-stale read

is a lost update waiting for the next workload mix.  This rule uses the
shared call graph's may-yield closure (``repro.lint.callgraph``) to
flag exactly that shape in the server-tier packages
(``atom_packages``): a read and a later write of the same shared-state
attribute chain with a may-yield call strictly between them, when the
write is not protected by

* an enclosing ``with`` whose context names a guard
  (``atom_guards``: ``_cv``, ``lock``, ...) — the documented critical
  bracket, or
* an earlier explicit lock acquisition in the same function
  (``atom_lock_calls``) — strict-2PL paths own their records once the
  lock is granted.

An augmented assignment whose right-hand side can itself yield
(``self.counter += self._charge()`` where ``_charge`` faults) is the
same bug in one statement and is flagged directly.  Justified
exceptions carry ``# simlint: ok[ATOM] <why>``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.lint.config import LintConfig
from repro.lint.findings import Finding
from repro.lint.project import CallSite, FunctionInfo, Project, _dotted, call_name

NAME = "ATOM"

#: Method names that mutate a container in place: a call like
#: ``self._queue.append(x)`` is a *write* of ``self._queue``.
_MUTATORS = frozenset(
    {
        "append",
        "appendleft",
        "add",
        "insert",
        "extend",
        "update",
        "remove",
        "discard",
        "pop",
        "popleft",
        "popitem",
        "clear",
        "setdefault",
    }
)


@dataclass
class _Event:
    kind: str                 # "load" | "store" | "yield" | "acquire"
    chain: tuple[str, ...]    # state chain for load/store, () otherwise
    line: int
    col: int
    guarded: bool
    detail: str = ""          # yield chain text for "yield" events


def _is_guard(expr: ast.AST, guards: frozenset[str]) -> bool:
    return any(part in guards for part in _dotted(expr))


class _Scanner:
    """Collects state accesses and suspension points for one unit."""

    def __init__(
        self,
        info: FunctionInfo,
        graph,
        state_attrs: frozenset[str],
        guards: frozenset[str],
        lock_calls: frozenset[str],
    ):
        self.info = info
        self.graph = graph
        self.state_attrs = state_attrs
        self.guards = guards
        self.lock_calls = lock_calls
        self.events: list[_Event] = []

    def _chain_of(self, node: ast.AST) -> tuple[str, ...] | None:
        """The state chain a node addresses, or None.  Subscript targets
        (``self._tasks[k]``) address the chain of their value."""
        while isinstance(node, ast.Subscript):
            node = node.value
        chain = tuple(_dotted(node))
        if chain and chain[-1] in self.state_attrs:
            return chain
        return None

    def _record(self, kind: str, node: ast.AST, guarded: bool) -> None:
        chain = self._chain_of(node)
        if chain is not None:
            self.events.append(
                _Event(kind, chain, node.lineno, node.col_offset, guarded)
            )

    def scan(self, stmts: list[ast.stmt], guarded: bool) -> None:
        for stmt in stmts:
            self.visit(stmt, guarded)

    def visit(self, node: ast.AST, guarded: bool) -> None:
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            return  # separate execution unit
        if isinstance(node, (ast.With, ast.AsyncWith)):
            inner = guarded or any(
                _is_guard(item.context_expr, self.guards)
                for item in node.items
            )
            for item in node.items:
                self.visit(item.context_expr, guarded)
            self.scan(node.body, inner)
            return
        if isinstance(node, ast.AugAssign):
            # no load event for the target: an augmented assignment's
            # read is consumed by its own write on the same line, so it
            # cannot be held stale across a later yield
            self.visit(node.value, guarded)
            chain = self._chain_of(node.target)
            if chain is not None:
                self.events.append(
                    _Event(
                        "store", chain, node.lineno, node.col_offset,
                        guarded, "aug",
                    )
                )
            return
        if isinstance(node, ast.Assign):
            self.visit(node.value, guarded)
            for target in node.targets:
                self._record("store", target, guarded)
                # subscripted targets still *read* the container
                self.visit(target, guarded)
            return
        if isinstance(node, ast.Call):
            name = call_name(node)
            if name is not None:
                chain = tuple(_dotted(node.func))
                site = CallSite(name, chain[:-1], node.lineno, node.col_offset)
                reason = self.graph.site_may_yield(self.info, site)
                if reason is not None:
                    self.events.append(
                        _Event(
                            "yield", (), node.lineno, node.col_offset,
                            guarded, reason,
                        )
                    )
                if name in self.lock_calls:
                    self.events.append(
                        _Event(
                            "acquire", (), node.lineno, node.col_offset,
                            guarded,
                        )
                    )
                if (
                    name in _MUTATORS
                    and len(chain) >= 2
                    and chain[-2] in self.state_attrs
                ):
                    # ``self._queue.append(x)`` writes ``self._queue``
                    self.events.append(
                        _Event(
                            "store",
                            tuple(chain[:-1]),
                            node.lineno,
                            node.col_offset,
                            guarded,
                        )
                    )
            for child in ast.iter_child_nodes(node):
                self.visit(child, guarded)
            return
        if isinstance(node, ast.Attribute) and isinstance(node.ctx, ast.Load):
            self._record("load", node, guarded)
        for child in ast.iter_child_nodes(node):
            self.visit(child, guarded)


def _units(project: Project) -> list[tuple[FunctionInfo, str, ast.AST]]:
    out = []
    for info in project.functions:
        out.append((info, info.qualname, info.node))
        for sub in ast.walk(info.node):
            if (
                isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef))
                and sub is not info.node
            ):
                out.append((info, f"{info.qualname}.{sub.name}", sub))
    return out


def check(project: Project, config: LintConfig) -> list[Finding]:
    findings: list[Finding] = []
    packages = set(config.atom_packages)
    state_attrs = frozenset(config.atom_state_attrs)
    guards = frozenset(config.atom_guards)
    lock_calls = frozenset(config.atom_lock_calls)
    graph = project.callgraph

    for info, qualname, node in _units(project):
        if info.module.package not in packages:
            continue
        scanner = _Scanner(info, graph, state_attrs, guards, lock_calls)
        scanner.scan(node.body, False)
        events = sorted(scanner.events, key=lambda e: (e.line, e.col))
        symbol = f"{info.module.name}:{qualname}"

        yields = [e for e in events if e.kind == "yield"]
        if not yields:
            continue
        acquires = [e for e in events if e.kind == "acquire"]

        def protected(event: _Event) -> bool:
            return event.guarded or any(
                a.line < event.line for a in acquires
            )

        flagged: set[tuple[int, int]] = set()
        for store in events:
            if store.kind != "store" or protected(store):
                continue
            for yld in yields:
                if yld.line >= store.line:
                    break
                hit = next(
                    (
                        load
                        for load in events
                        if load.kind == "load"
                        and load.chain == store.chain
                        and load.line < yld.line
                    ),
                    None,
                )
                if hit is None:
                    continue
                key = (store.line, store.col)
                if key in flagged:
                    break
                flagged.add(key)
                attr = ".".join(store.chain)
                findings.append(
                    Finding(
                        rule=NAME,
                        path=info.module.path,
                        line=store.line,
                        col=store.col,
                        message=(
                            f"read of {attr} on line {hit.line} and this "
                            f"write span a may-yield call on line "
                            f"{yld.line} ({yld.detail}); another session "
                            "can interleave — hold the critical bracket "
                            "(e.g. `with self._cv:`) across the sequence, "
                            "acquire the lock first, or justify with "
                            "`# simlint: ok[ATOM] <why>`"
                        ),
                        symbol=symbol,
                    )
                )
                break

        # one-statement RMW whose modify step can itself yield:
        # an augmented assignment evaluating a suspending call.
        for store in events:
            if store.kind != "store" or store.detail != "aug":
                continue
            if protected(store):
                continue
            for yld in yields:
                if yld.line != store.line:
                    continue
                key = (store.line, store.col)
                if key in flagged:
                    continue
                flagged.add(key)
                attr = ".".join(store.chain)
                findings.append(
                    Finding(
                        rule=NAME,
                        path=info.module.path,
                        line=store.line,
                        col=store.col,
                        message=(
                            f"augmented write of {attr} evaluates a "
                            f"may-yield call on the same line "
                            f"({yld.detail}); the read-modify-write is "
                            "not atomic under the cooperative scheduler "
                            "— hoist the call before the update or hold "
                            "the bracket; justify with "
                            "`# simlint: ok[ATOM] <why>`"
                        ),
                        symbol=symbol,
                    )
                )
    return findings
