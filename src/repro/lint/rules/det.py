"""DET — determinism hazards.

The whole methodology depends on bit-identical reruns: `Stat` rows are
compared across runs, the recovery fuzzer replays crash points, and the
service scheduler interleaves clients by simulated time.  Anything that
injects wall-clock time, OS entropy, or hash/id ordering breaks all of
it silently.  This rule flags:

* wall-clock calls (``time.time``, ``datetime.now``, ...);
* OS entropy (``os.urandom``, ``uuid.uuid1/uuid4``);
* unseeded randomness (module-level ``random.*`` functions and a
  no-argument ``Random()``) — seeded ``random.Random(seed)`` is the
  sanctioned idiom;
* ``id()`` used as a sort key;
* iterating a set (literal, ``set()`` call, set algebra) into ordered
  output without ``sorted()`` — ``for``/comprehensions and
  order-preserving consumers (``list``, ``tuple``, ``enumerate``,
  ``str.join``).
"""

from __future__ import annotations

import ast

from repro.lint.config import LintConfig
from repro.lint.findings import Finding
from repro.lint.project import Module, Project, _dotted, call_name

NAME = "DET"

#: (second-to-last, last) dotted-name suffixes of forbidden calls.
_WALL_CLOCK = {
    ("time", "time"): "wall-clock time",
    ("time", "time_ns"): "wall-clock time",
    ("time", "monotonic"): "wall-clock time",
    ("time", "monotonic_ns"): "wall-clock time",
    ("time", "perf_counter"): "wall-clock time",
    ("time", "perf_counter_ns"): "wall-clock time",
    ("datetime", "now"): "wall-clock time",
    ("datetime", "utcnow"): "wall-clock time",
    ("datetime", "today"): "wall-clock time",
    ("date", "today"): "wall-clock time",
    ("os", "urandom"): "OS entropy",
    ("uuid", "uuid1"): "OS entropy",
    ("uuid", "uuid4"): "OS entropy",
}

#: module-level ``random.X`` functions that use the shared, unseeded
#: global generator.
_GLOBAL_RANDOM = {
    "random",
    "randint",
    "randrange",
    "choice",
    "choices",
    "sample",
    "shuffle",
    "uniform",
    "getrandbits",
    "gauss",
}

#: ``from <module> import <name>`` pairs that smuggle the same hazards
#: in under a bare name.
_BAD_IMPORTS = {
    ("time", "time"),
    ("time", "perf_counter"),
    ("time", "monotonic"),
    ("os", "urandom"),
    ("uuid", "uuid4"),
    ("uuid", "uuid1"),
} | {("random", name) for name in _GLOBAL_RANDOM}

#: consumers that preserve iteration order.
_ORDERED_CONSUMERS = {"list", "tuple", "enumerate"}


def _is_unordered(node: ast.AST) -> bool:
    """Does this expression produce arbitrary (hash) iteration order?"""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        return isinstance(func, ast.Name) and func.id in ("set", "frozenset")
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
    ):
        return _is_unordered(node.left) or _is_unordered(node.right)
    return False


def _lambda_calls_id(node: ast.AST) -> bool:
    for sub in ast.walk(node):
        if (
            isinstance(sub, ast.Call)
            and isinstance(sub.func, ast.Name)
            and sub.func.id == "id"
        ):
            return True
    return False


class _DetVisitor(ast.NodeVisitor):
    def __init__(self, module: Module):
        self.module = module
        self.findings: list[Finding] = []
        self._symbol_stack: list[str] = []

    # -- bookkeeping -------------------------------------------------------

    def _symbol(self) -> str:
        return ".".join(self._symbol_stack) or "<module>"

    def _flag(self, node: ast.AST, message: str) -> None:
        self.findings.append(
            Finding(
                rule=NAME,
                path=self.module.path,
                line=node.lineno,
                col=node.col_offset,
                message=message,
                symbol=f"{self.module.name}:{self._symbol()}",
            )
        )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._symbol_stack.append(node.name)
        self.generic_visit(node)
        self._symbol_stack.pop()

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._symbol_stack.append(node.name)
        self.generic_visit(node)
        self._symbol_stack.pop()

    # -- imports -----------------------------------------------------------

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        for alias in node.names:
            if (node.module, alias.name) in _BAD_IMPORTS:
                self._flag(
                    node,
                    f"import of {node.module}.{alias.name} brings a "
                    "nondeterministic source into scope; use SimClock or a "
                    "seeded random.Random",
                )

    # -- calls -------------------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        chain = tuple(_dotted(node.func))
        suffix = chain[-2:]
        if suffix in _WALL_CLOCK:
            self._flag(
                node,
                f"{'.'.join(suffix)}() is {_WALL_CLOCK[suffix]}; simulated "
                "runs must take time only from SimClock",
            )
        elif (
            len(suffix) == 2
            and suffix[0] == "random"
            and suffix[1] in _GLOBAL_RANDOM
        ):
            self._flag(
                node,
                f"random.{suffix[1]}() uses the global unseeded generator; "
                "use a random.Random(seed) instance",
            )
        elif chain and chain[-1] == "Random" and not node.args and not node.keywords:
            self._flag(
                node,
                "Random() without a seed draws entropy from the OS; pass an "
                "explicit seed",
            )

        name = call_name(node)
        if name in ("sorted", "min", "max") or name == "sort":
            for keyword in node.keywords:
                if keyword.arg == "key" and (
                    (isinstance(keyword.value, ast.Name) and keyword.value.id == "id")
                    or (
                        isinstance(keyword.value, ast.Lambda)
                        and _lambda_calls_id(keyword.value)
                    )
                ):
                    self._flag(
                        keyword.value,
                        "id() as a sort key orders by allocation address, "
                        "which varies run to run; sort by a stable field",
                    )
        if name in _ORDERED_CONSUMERS and node.args and _is_unordered(node.args[0]):
            self._flag(
                node,
                f"{name}() over a set materialises arbitrary hash order; "
                "wrap the set in sorted()",
            )
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "join"
            and node.args
            and _is_unordered(node.args[0])
        ):
            self._flag(
                node,
                "join() over a set concatenates in arbitrary hash order; "
                "wrap the set in sorted()",
            )
        self.generic_visit(node)

    # -- iteration ---------------------------------------------------------

    def _check_iter(self, iter_node: ast.AST) -> None:
        if _is_unordered(iter_node):
            self._flag(
                iter_node,
                "iterating a set yields arbitrary hash order; wrap it in "
                "sorted() before it can feed results, meters, or the WAL",
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_iter(node.iter)
        self.generic_visit(node)

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        self._check_iter(node.iter)
        self.generic_visit(node)

    def _visit_comprehension(self, node) -> None:
        for generator in node.generators:
            self._check_iter(generator.iter)
        self.generic_visit(node)

    visit_ListComp = _visit_comprehension
    visit_SetComp = _visit_comprehension
    visit_DictComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension


def check(project: Project, config: LintConfig) -> list[Finding]:
    findings: list[Finding] = []
    for module in project.modules:
        visitor = _DetVisitor(module)
        visitor.visit(module.tree)
        findings.extend(visitor.findings)
    return findings
