"""The rule registry.

Every rule is a module exposing ``NAME`` (the code that appears in
findings and suppressions) and ``check(project, config)`` returning a
list of :class:`~repro.lint.findings.Finding`.  Rules never see
suppressions or baselines — the runner filters their output.
"""

from __future__ import annotations

from repro.lint.rules import atom, charge, det, escape, exc, layer, pair, proto

#: name -> rule module, in report-priority order.
ALL_RULES = {
    module.NAME: module
    for module in (det, charge, layer, pair, exc, atom, proto, escape)
}

__all__ = ["ALL_RULES"]
