"""What a rule reports: one :class:`Finding` per violation."""

from __future__ import annotations

import hashlib
from dataclasses import dataclass


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str      # rule name, e.g. "DET"
    path: str      # path as given to the runner (repo-relative in CI)
    line: int      # 1-based line of the offending statement
    col: int       # 0-based column
    message: str   # human explanation, specific to the site
    symbol: str = ""  # enclosing function/import, for stable fingerprints

    @property
    def fingerprint(self) -> str:
        """Identity that survives unrelated edits (no line numbers):
        two findings with the same rule, file, enclosing symbol and
        message are the same finding for baseline purposes."""
        key = f"{self.rule}|{self.path}|{self.symbol}|{self.message}"
        return hashlib.sha1(key.encode()).hexdigest()[:16]

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col + 1}: {self.rule} {self.message}"


def sort_findings(findings: list[Finding]) -> list[Finding]:
    """Stable report order: by file, then line, then rule."""
    return sorted(findings, key=lambda f: (f.path, f.line, f.col, f.rule))
