"""Command-line front end: ``python -m repro lint`` / ``python -m repro.lint``.

Exit codes: 0 clean, 1 findings, 2 usage or configuration error.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import replace

from repro.lint.baseline import Baseline
from repro.lint.config import LintConfig, load_config
from repro.lint.report import render_json, render_sarif, render_text
from repro.lint.runner import lint_paths

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Mountable on a standalone parser or a ``repro`` subparser."""
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: [tool.simlint] paths)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--rules",
        help="comma-separated rule subset, e.g. DET,LAYER (default: all configured)",
    )
    parser.add_argument(
        "--baseline",
        help="baseline file to tolerate (overrides [tool.simlint] baseline)",
    )
    parser.add_argument(
        "--write-baseline",
        metavar="PATH",
        help="write current findings to PATH as a baseline and exit 0",
    )
    parser.add_argument(
        "--no-config",
        action="store_true",
        help="ignore pyproject.toml; run with built-in defaults",
    )
    parser.add_argument(
        "--show-suppressed",
        action="store_true",
        help="also list findings silenced by inline ok[...] comments",
    )
    parser.add_argument(
        "--timing",
        action="store_true",
        help="print per-rule wall time (plus parse/callgraph) to stderr",
    )
    parser.add_argument(
        "--dump-graph",
        metavar="PATH",
        help="write the call graph (DOT, may-yield set highlighted) to PATH",
    )


def run_lint(args: argparse.Namespace) -> int:
    """Shared implementation for both entry points."""
    try:
        config: LintConfig = (
            LintConfig() if args.no_config else load_config(".")
        )
        if args.rules:
            from repro.lint.rules import ALL_RULES

            wanted = tuple(
                rule.strip().upper() for rule in args.rules.split(",") if rule.strip()
            )
            unknown = [rule for rule in wanted if rule not in ALL_RULES]
            if unknown:
                print(
                    f"simlint: unknown rule(s): {', '.join(unknown)}",
                    file=sys.stderr,
                )
                return EXIT_USAGE
            config = replace(config, select=wanted)
    except (OSError, ValueError, TypeError) as exc:
        print(f"simlint: bad configuration: {exc}", file=sys.stderr)
        return EXIT_USAGE

    result = lint_paths(tuple(args.paths) or None, config)

    if getattr(args, "dump_graph", None):
        assert result.project is not None
        with open(args.dump_graph, "w", encoding="utf-8") as fh:
            fh.write(result.project.callgraph.to_dot())
        print(f"simlint: call graph written to {args.dump_graph}", file=sys.stderr)
    if getattr(args, "timing", False):
        total = sum(result.timings.values())
        print("simlint: timing", file=sys.stderr)
        for name, spent in result.timings.items():
            print(f"  {name:10s} {spent * 1000.0:8.1f} ms", file=sys.stderr)
        print(f"  {'total':10s} {total * 1000.0:8.1f} ms", file=sys.stderr)

    baseline_path = args.baseline or config.baseline
    baselined = 0
    findings = result.findings
    if args.write_baseline:
        Baseline.from_findings(findings).save(args.write_baseline)
        print(
            f"simlint: wrote baseline with {len(findings)} "
            f"finding(s) to {args.write_baseline}"
        )
        return EXIT_CLEAN
    if baseline_path:
        try:
            baseline = Baseline.load(baseline_path)
        except FileNotFoundError:
            print(
                f"simlint: baseline file not found: {baseline_path}",
                file=sys.stderr,
            )
            return EXIT_USAGE
        except ValueError as exc:
            print(f"simlint: {exc}", file=sys.stderr)
            return EXIT_USAGE
        findings, baselined = baseline.filter(findings)

    render = {
        "json": render_json,
        "sarif": render_sarif,
        "text": render_text,
    }[args.format]
    print(render(findings, result.files_checked, baselined), end="")
    if args.format == "text":
        print()
        if args.show_suppressed and result.suppressed_findings:
            print(f"-- {result.suppressed} suppressed --")
            for finding in result.suppressed_findings:
                print(f"{finding.render()}  [suppressed]")
    return EXIT_FINDINGS if findings else EXIT_CLEAN


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="simlint",
        description="AST invariant linter for the repro codebase "
        "(determinism, cost charging, layering, pairing, exceptions)",
    )
    add_lint_arguments(parser)
    return run_lint(parser.parse_args(argv))


if __name__ == "__main__":
    raise SystemExit(main())
