"""Stateful testing of the handle table: refcount and sharing invariants
under arbitrary get/unreference interleavings."""

from __future__ import annotations

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)

from repro.objects import AttrKind, AttributeDef, HandleTable, Schema
from repro.simtime import CostParams, CounterSet, SimClock
from repro.storage.rid import Rid

_RIDS = st.integers(min_value=0, max_value=9)


class HandleMachine(RuleBasedStateMachine):
    """Model: a per-rid reference count; the table must agree."""

    @initialize()
    def setup(self):
        schema = Schema()
        self.cls = schema.define("T", [AttributeDef("x", AttrKind.INT32)])
        self.table = HandleTable(
            SimClock(), CostParams(), CounterSet(), delayed_free_capacity=3
        )
        self.refcounts: dict[int, int] = {}
        self.handles: dict[int, object] = {}

    @rule(n=_RIDS)
    def get(self, n):
        rid = Rid(0, n, 0)
        handle = self.table.get(rid, lambda: (b"\x01\x01\x00\x00\x00", self.cls))
        previous = self.refcounts.get(n, 0)
        if previous > 0:
            # Must be shared, not duplicated.
            assert handle is self.handles[n]
        self.handles[n] = handle
        self.refcounts[n] = previous + 1
        assert handle.refcount == self.refcounts[n]

    @precondition(lambda self: any(c > 0 for c in getattr(self, "refcounts", {}).values()))
    @rule(data=st.data())
    def unreference(self, data):
        live = [n for n, c in self.refcounts.items() if c > 0]
        n = data.draw(st.sampled_from(live))
        self.table.unreference(self.handles[n])
        self.refcounts[n] -= 1

    @invariant()
    def live_count_matches_model(self):
        if not hasattr(self, "table"):
            return
        model_live = sum(1 for c in self.refcounts.values() if c > 0)
        assert self.table.live_count == model_live

    @invariant()
    def parked_is_bounded(self):
        if not hasattr(self, "table"):
            return
        assert self.table.parked_count <= 3

    @invariant()
    def refcounts_positive_for_live(self):
        if not hasattr(self, "table"):
            return
        for n, count in self.refcounts.items():
            if count > 0:
                assert self.handles[n].refcount == count


HandleMachine.TestCase.settings = settings(
    max_examples=30, stateful_step_count=50, deadline=None
)
TestHandleStateful = HandleMachine.TestCase
