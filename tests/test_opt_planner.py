"""Tests for the cost-based plan enumerator (``repro.opt.enumerator``).

The contract under test: ``CostBasedOptimizer`` explores a superset of
the heuristic planner's alternatives, labels them distinctly, always
chooses the minimum-estimate plan, produces semantically identical
results, and — before ``install_stats`` — degrades to the heuristic
planner's behavior.
"""

from __future__ import annotations

import pytest

from repro.bench.workloads import selection_query_text, tree_query_text
from repro.cluster import load_derby
from repro.derby import DerbyConfig
from repro.derby.config import Clustering
from repro.opt import CostBasedOptimizer, StatsCollector
from repro.oql import Catalog, OQLEngine
from repro.simtime import CostParams


@pytest.fixture(scope="module")
def derby():
    config = DerbyConfig(
        n_providers=40,
        n_patients=1200,
        clustering=Clustering.CLASS,
        scale=0.002,
        params=CostParams().scaled(0.002),
    )
    return load_derby(config)


@pytest.fixture(scope="module")
def catalog(derby):
    return Catalog.from_derby(derby)


@pytest.fixture(scope="module")
def table_stats(catalog):
    return StatsCollector(catalog).collect()


@pytest.fixture(scope="module")
def cost_engine(catalog, table_stats):
    optimizer = CostBasedOptimizer(catalog, include_extensions=True)
    optimizer.install_stats(table_stats)
    return OQLEngine(catalog, optimizer=optimizer)


@pytest.fixture(scope="module")
def heuristic_engine(catalog):
    return OQLEngine(catalog)


def _chosen_label(plan) -> str:
    labels = [
        name for name, est in plan.alternatives.items()
        if est is plan.estimate
    ]
    assert len(labels) == 1
    return labels[0]


class TestSelectionEnumeration:
    def test_alternative_labels(self, derby, cost_engine):
        query = selection_query_text(derby.config, 30)
        plan = cost_engine.plan(query)
        assert "scan" in plan.alternatives
        assert "index(num)" in plan.alternatives
        assert "sorted-index(num)" in plan.alternatives

    def test_chosen_is_minimum(self, derby, cost_engine):
        for pct in (10, 30, 60, 90):
            plan = cost_engine.plan(selection_query_text(derby.config, pct))
            best = min(e.seconds for e in plan.alternatives.values())
            assert plan.estimate.seconds == best

    def test_high_selectivity_scans(self, derby, cost_engine):
        plan = cost_engine.plan(selection_query_text(derby.config, 90))
        assert _chosen_label(plan) == "scan"

    def test_multi_predicate_enumerates_both_indexes(self, cost_engine):
        plan = cost_engine.plan(
            "select p.age from p in Patients "
            "where p.num > 600 and p.mrn < 100000"
        )
        families = {
            label for label in plan.alternatives
            if label != "scan" and not label.startswith("index-only")
        }
        assert "index(num)" in families or "sorted-index(num)" in families
        assert "index(mrn)" in families or "sorted-index(mrn)" in families

    def test_index_only_aggregate(self, cost_engine):
        plan = cost_engine.plan(
            "select count(p) from p in Patients where p.num < 600"
        )
        assert plan.index_only
        assert _chosen_label(plan) == "index-only(num)"

    def test_index_only_label_absent_for_plain_query(self, cost_engine):
        plan = cost_engine.plan(
            "select p.age from p in Patients where p.num < 600"
        )
        assert not any(
            label.startswith("index-only") for label in plan.alternatives
        )

    def test_est_rows_tracks_actual(self, derby, cost_engine):
        for pct in (10, 60):
            query = selection_query_text(derby.config, pct)
            plan = cost_engine.plan(query)
            rows = cost_engine.execute(query)
            assert plan.est_rows == pytest.approx(len(rows), rel=0.15)


class TestJoinEnumeration:
    def test_all_six_algorithms_with_extensions(self, derby, cost_engine):
        query = tree_query_text(derby.config, 10, 90)
        plan = cost_engine.plan(query)
        assert set(plan.alternatives) == {
            "NL", "NOJOIN", "PHJ", "CHJ", "PHJ-HYBRID", "SMJ"
        }
        assert plan.algorithm in plan.alternatives

    def test_paper_four_without_extensions(self, derby, catalog, table_stats):
        optimizer = CostBasedOptimizer(catalog)
        optimizer.install_stats(table_stats)
        engine = OQLEngine(catalog, optimizer=optimizer)
        plan = engine.plan(tree_query_text(derby.config, 10, 90))
        assert set(plan.alternatives) == {"NL", "NOJOIN", "PHJ", "CHJ"}

    def test_chosen_is_minimum(self, derby, cost_engine):
        for sel in ((10, 10), (10, 90), (90, 10), (90, 90)):
            plan = cost_engine.plan(tree_query_text(derby.config, *sel))
            best = min(plan.alternatives, key=lambda k:
                       plan.alternatives[k].seconds)
            assert plan.algorithm == best

    def test_est_rows_tracks_actual(self, derby, cost_engine):
        query = tree_query_text(derby.config, 10, 90)
        plan = cost_engine.plan(query)
        rows = cost_engine.execute(query)
        assert plan.est_rows == pytest.approx(len(rows), rel=0.2)


class TestSemanticEquivalence:
    QUERIES = [
        "select p.age from p in Patients where p.num > 600",
        "select count(p) from p in Patients where p.mrn < 100000",
        "select tuple(n: p.name, a: p.age) from p in Patients "
        "where p.num > 900 and p.age < 60 order by p.age",
    ]

    def test_selection_rows_match_heuristic(
        self, cost_engine, heuristic_engine
    ):
        for query in self.QUERIES:
            cost_rows = cost_engine.execute(query)
            heuristic_rows = heuristic_engine.execute(query)
            assert sorted(map(repr, cost_rows)) == sorted(
                map(repr, heuristic_rows)
            )

    def test_join_rows_match_heuristic(
        self, derby, cost_engine, heuristic_engine
    ):
        for sel in ((10, 10), (90, 90)):
            query = tree_query_text(derby.config, *sel)
            cost_rows = cost_engine.execute(query)
            heuristic_rows = heuristic_engine.execute(query)
            assert sorted(map(repr, cost_rows)) == sorted(
                map(repr, heuristic_rows)
            )


class TestFallbackWithoutStats:
    def test_matches_heuristic_choices(self, derby, catalog,
                                       heuristic_engine):
        engine = OQLEngine(
            catalog, optimizer=CostBasedOptimizer(catalog)
        )
        for pct in (10, 90):
            query = selection_query_text(derby.config, pct)
            cold = engine.plan(query)
            heuristic = heuristic_engine.plan(query)
            assert (cold.predicate is None) == (heuristic.predicate is None)
            assert cold.sorted_rids == heuristic.sorted_rids
        for sel in ((10, 10), (90, 90)):
            query = tree_query_text(derby.config, *sel)
            assert (engine.plan(query).algorithm
                    == heuristic_engine.plan(query).algorithm)

    def test_stats_property_roundtrip(self, catalog, table_stats):
        optimizer = CostBasedOptimizer(catalog)
        assert not optimizer.table_stats
        optimizer.install_stats(table_stats)
        assert optimizer.table_stats is table_stats
