"""Tests for the resource governor: budgets, cancellation, retries,
admission control, and the transient-fault machinery underneath it."""

from __future__ import annotations

from random import Random

import pytest

from repro.cluster import load_derby
from repro.derby import DerbyConfig
from repro.errors import (
    BudgetExceededError,
    GovernorError,
    LockConflictError,
    LockTimeoutError,
    PermanentIOError,
    QueryCancelledError,
    StatementTimeoutError,
)
from repro.recovery import TransientFaultInjector
from repro.service import (
    CooperativeScheduler,
    MixConfig,
    QueryBudget,
    QueryService,
    RetryPolicy,
    WorkloadMixer,
)
from repro.simtime import Bucket, CostParams, SimClock
from repro.storage.disk import DiskManager
from repro.storage.rid import Rid
from repro.txn import LockManager, LockMode

A = Rid(0, 0, 0)

SCAN = "select p.age from p in Patients where p.num > 0"


def fresh_derby(scale: float = 0.00001):
    return load_derby(DerbyConfig.db_1to3(scale=scale))


def make_lock_world(timeout_s: float | None = None):
    clock = SimClock()
    locks = LockManager(clock, CostParams(), timeout_s=timeout_s)
    scheduler = CooperativeScheduler(clock, locks)
    return clock, locks, scheduler


# ------------------------------------------------------------ retry policy


class TestRetryPolicy:
    def test_backoff_is_deterministic_for_a_seed(self):
        policy = RetryPolicy()
        a = [policy.backoff_s(i, Random(42)) for i in range(4)]
        b = [policy.backoff_s(i, Random(42)) for i in range(4)]
        assert a == b

    def test_backoff_grows_exponentially_without_jitter(self):
        policy = RetryPolicy(
            base_backoff_s=0.01, multiplier=2.0, max_backoff_s=1.0,
            jitter=0.0,
        )
        rng = Random(0)
        values = [policy.backoff_s(i, rng) for i in range(4)]
        assert values == [0.01, 0.02, 0.04, 0.08]

    def test_backoff_is_capped(self):
        policy = RetryPolicy(
            base_backoff_s=0.01, multiplier=10.0, max_backoff_s=0.05,
            jitter=0.0,
        )
        assert policy.backoff_s(5, Random(0)) == 0.05

    def test_jitter_stays_within_the_jitter_band(self):
        policy = RetryPolicy(base_backoff_s=0.1, jitter=0.5)
        rng = Random(7)
        for attempt in range(3):
            raw = min(0.1 * 2.0 ** attempt, policy.max_backoff_s)
            value = policy.backoff_s(attempt, rng)
            assert raw * 0.5 <= value <= raw

    def test_negative_attempt_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy().backoff_s(-1, Random(0))


# ------------------------------------------------- transient fault injector


class TestTransientFaults:
    def _disk_with_faults(self, **kwargs) -> DiskManager:
        disk = DiskManager()
        file_id = disk.create_file()
        disk.allocate_page(file_id)
        disk.faults = TransientFaultInjector(**kwargs)
        return disk

    def test_sticky_fault_escalates_to_permanent(self):
        disk = self._disk_with_faults(
            seed=1, read_fault_rate=1.0, read_fault_persistence=1.0
        )
        with pytest.raises(PermanentIOError):
            disk.read_page(0, 0)
        # Initial attempt + read_retry_limit retries all faulted.
        assert disk.counters.io_faults == disk.read_retry_limit + 1
        assert disk.counters.io_failures == 1
        assert disk.counters.disk_reads == disk.read_retry_limit + 1

    def test_one_shot_fault_retries_and_succeeds(self):
        disk = self._disk_with_faults(
            seed=1, read_fault_rate=1.0, read_fault_persistence=0.0
        )
        before_s = disk.clock.elapsed_s
        disk.read_page(0, 0)
        assert disk.counters.io_faults == 1
        assert disk.counters.io_failures == 0
        assert disk.counters.disk_reads == 2  # original + one retry
        # Two page reads plus the retry backoff were charged.
        expected_ms = (
            2 * disk.params.page_read_ms + disk.params.io_retry_backoff_ms
        )
        assert disk.clock.elapsed_s - before_s == pytest.approx(
            expected_ms / 1_000.0
        )

    def test_fault_stream_is_deterministic(self):
        def draws(seed):
            inj = TransientFaultInjector(seed=seed, read_fault_rate=0.3)
            return [inj.read_fails(0, i, 0) for i in range(64)]

        assert draws(5) == draws(5)
        assert draws(5) != draws(6)
        assert any(draws(5))

    def test_storm_windows_tighten_the_effective_timeout(self):
        inj = TransientFaultInjector(
            seed=3, storm_mean_gap_s=0.5, storm_len_s=0.1,
            storm_timeout_s=0.002,
        )
        probes = [i * 0.01 for i in range(400)]
        states = {inj.storm_active(t) for t in probes}
        assert states == {True, False}  # storms start and end
        for t in probes:
            if inj.storm_active(t):
                assert inj.lock_timeout_s(1.0, t) == 0.002
                assert inj.lock_timeout_s(None, t) == 0.002
                assert inj.lock_timeout_s(0.001, t) == 0.001
            else:
                assert inj.lock_timeout_s(1.0, t) == 1.0
                assert inj.lock_timeout_s(None, t) is None
        # Same seed, fresh injector: identical windows.
        again = TransientFaultInjector(
            seed=3, storm_mean_gap_s=0.5, storm_len_s=0.1,
            storm_timeout_s=0.002,
        )
        assert [inj.storm_active(t) for t in probes] == [
            again.storm_active(t) for t in probes
        ]

    def test_storm_times_out_waiter_with_no_base_timeout(self):
        # Base timeout None: waiters would block until deadlock
        # detection.  A permanent storm collapses the effective timeout,
        # so the waiter aborts with LockTimeoutError instead.
        clock, locks, scheduler = make_lock_world(timeout_s=None)
        locks.injector = TransientFaultInjector(
            seed=1, storm_mean_gap_s=1e-6, storm_len_s=1e9,
            storm_timeout_s=0.001,
        )
        clock.charge_s(Bucket.CPU, 1.0)  # move past the storm's start
        outcome = {}

        def holder():
            locks.acquire(1, A, LockMode.EXCLUSIVE)
            scheduler.yield_point()
            clock.charge_s(Bucket.CPU, 0.01)
            scheduler.yield_point()
            locks.release_all(1)

        def waiter():
            try:
                locks.acquire(2, A, LockMode.EXCLUSIVE)
                outcome[2] = "granted"
                locks.release_all(2)
            except LockTimeoutError:
                outcome[2] = "timeout"

        scheduler.spawn("holder", holder)
        scheduler.spawn("waiter", waiter)
        tasks = scheduler.run()
        assert [t.error for t in tasks] == [None, None]
        assert outcome == {2: "timeout"}
        assert locks.waiting_count == 0
        assert locks.lock_count == 0

    def test_arm_and_disarm_are_identity_checked(self):
        derby = fresh_derby()
        mine = TransientFaultInjector(seed=1)
        other = TransientFaultInjector(seed=2)
        mine.arm(derby.db)
        other.disarm(derby.db)  # not armed: must not detach mine
        assert derby.db.disk.faults is mine
        mine.disarm(derby.db)
        assert derby.db.disk.faults is None

    def test_injector_rejects_bad_rates(self):
        with pytest.raises(ValueError):
            TransientFaultInjector(read_fault_rate=1.5)
        with pytest.raises(ValueError):
            TransientFaultInjector(read_fault_persistence=-0.1)
        with pytest.raises(ValueError):
            TransientFaultInjector(storm_mean_gap_s=0.0)


# ------------------------------------------------------------------ budgets


def run_single_scan(derby, **service_kwargs):
    """One session running one governed scan; returns (service, task)."""
    service = QueryService(derby, **service_kwargs)
    session = service.open_session("scanner")
    session.batch_size = 8

    def body():
        session.begin()
        try:
            rows = session.execute(SCAN)
            session.commit()
            return ("done", len(rows))
        except GovernorError as exc:
            session.abort()
            return ("stopped", exc)

    service.spawn(session, body)
    # A second session so yield points actually switch.
    idle = service.open_session("idle")
    service.spawn(idle, lambda: idle.pause())
    tasks = service.run()
    service.close()
    return service, session, tasks[0]


class TestBudgets:
    def test_page_budget_exceeded_aborts_statement(self):
        derby = fresh_derby()
        __, session, task = run_single_scan(
            derby, query_budget=QueryBudget(max_pages=1)
        )
        kind, exc = task.result
        assert kind == "stopped"
        assert isinstance(exc, BudgetExceededError)
        assert session.metrics.over_budget == 1
        assert session.metrics.aborted == 1

    def test_budget_exactly_exhausted_on_final_batch_completes(self):
        # Measure the statement's exact page-fault cost ungoverned ...
        derby = fresh_derby()
        __, session, task = run_single_scan(derby)
        kind, n_rows = task.result
        assert kind == "done"
        pages = session.metrics.meters.client_faults
        assert pages > 1

        # ... a budget of exactly that many pages completes (bounds trip
        # only when strictly exceeded) ...
        derby2 = fresh_derby()
        __, session2, task2 = run_single_scan(
            derby2, query_budget=QueryBudget(max_pages=pages)
        )
        assert task2.result == ("done", n_rows)
        assert session2.metrics.over_budget == 0

        # ... while one page less aborts.
        derby3 = fresh_derby()
        __, session3, task3 = run_single_scan(
            derby3, query_budget=QueryBudget(max_pages=pages - 1)
        )
        assert task3.result[0] == "stopped"
        assert session3.metrics.over_budget == 1

    def test_statement_timeout_uses_the_shared_timeline(self):
        derby = fresh_derby()
        __, session, task = run_single_scan(
            derby, query_budget=QueryBudget(statement_timeout_s=1e-9)
        )
        kind, exc = task.result
        assert kind == "stopped"
        assert isinstance(exc, StatementTimeoutError)
        assert isinstance(exc, BudgetExceededError)  # subclass contract
        assert session.metrics.over_budget == 1

    def test_live_rows_budget_trips_on_buffered_rows(self):
        derby = fresh_derby()
        __, session, task = run_single_scan(
            derby, query_budget=QueryBudget(max_live_rows=1)
        )
        kind, exc = task.result
        assert kind == "stopped"
        assert isinstance(exc, BudgetExceededError)
        assert "live rows" in str(exc)

    def test_governor_errors_are_not_lock_conflicts(self):
        # Governed stops must never be auto-retried by the lock-conflict
        # retry machinery.
        assert not issubclass(GovernorError, LockConflictError)
        assert issubclass(QueryCancelledError, GovernorError)
        assert issubclass(StatementTimeoutError, BudgetExceededError)

    def test_no_locks_or_handles_leak_after_budget_abort(self):
        derby = fresh_derby()
        service, session, task = run_single_scan(
            derby, query_budget=QueryBudget(max_pages=1)
        )
        assert task.result[0] == "stopped"
        assert service.txm.locks.lock_count == 0
        assert service.txm.locks.waiting_count == 0
        assert service.txm.active_count == 0
        assert session.handles.live_count == 0


# ------------------------------------------------------------- cancellation


class TestCancellation:
    def test_cancelled_scan_stops_charging_io_within_one_batch(self):
        # Regression for the double checkpoint around the fault yield:
        # the flag set while the victim was switched out must be
        # observed *before* the next page RPC is charged.
        batch_size = 8
        derby = fresh_derby(scale=0.0005)
        service = QueryService(derby)
        victim = service.open_session("victim")
        victim.batch_size = batch_size
        observed = {}

        def victim_body():
            victim.begin()
            try:
                victim.execute(SCAN)
                victim.commit()
                return "done"
            except QueryCancelledError:
                victim.abort()
                return "cancelled"

        def canceller_body():
            canceller.pause()  # let the victim get into its scan
            observed["faults_at_cancel"] = (
                victim.metrics.meters.client_faults
            )
            victim.cancel("test cancel")
            return "sent"

        canceller = service.open_session("canceller")
        service.spawn(victim, victim_body)
        service.spawn(canceller, canceller_body)
        tasks = service.run()
        service.close()

        assert [t.result for t in tasks] == ["cancelled", "sent"]
        assert victim.metrics.cancelled == 1
        assert victim.metrics.aborted == 1
        faults_after = (
            victim.metrics.meters.client_faults
            - observed["faults_at_cancel"]
        )
        assert faults_after <= batch_size, (
            f"cancelled scan charged {faults_after} more faults after "
            "the cancel point"
        )
        # And it genuinely stopped early: a full scan costs far more.
        derby2 = fresh_derby(scale=0.0005)
        __, full_session, full_task = run_single_scan(derby2)
        assert full_task.result[0] == "done"
        full_faults = full_session.metrics.meters.client_faults
        assert victim.metrics.meters.client_faults < full_faults / 2

    def test_cancel_interrupts_a_blocked_lock_wait(self):
        derby = fresh_derby()
        service = QueryService(derby)
        holder = service.open_session("holder")
        victim = service.open_session("victim")
        rid = derby.patient_rids[0]

        def holder_body():
            holder.begin()
            holder.write_lock(rid)
            holder.pause()  # victim blocks on rid here
            victim.cancel("kill the waiter")
            holder.commit()
            return "committed"

        def victim_body():
            victim.begin()
            try:
                victim.write_lock(rid)  # blocks; interrupted here
                victim.commit()
                return "granted"
            except QueryCancelledError:
                victim.abort()
                return "cancelled"

        service.spawn(holder, holder_body)
        service.spawn(victim, victim_body)
        tasks = service.run()
        locks = service.txm.locks
        service.close()

        assert [t.result for t in tasks] == ["committed", "cancelled"]
        # Delivered at the wait point, not at a later checkpoint.
        assert service.governor.interrupts == 1
        assert victim.metrics.cancelled == 1
        assert locks.waiting_count == 0
        assert locks.lock_count == 0
        assert service.txm.active_count == 0


# ------------------------------------------------ retries / giving up / mixes


class TestRetries:
    def test_deadlock_victims_with_retries_eventually_commit(self):
        # Two updaters on a two-patient hot set lock in opposite orders:
        # a guaranteed deadlock mill.  With retries enabled every op
        # eventually commits.
        derby = fresh_derby()
        config = MixConfig(
            navigators=0, scanners=0, updaters=2,
            ops_per_client=4, hot_set=2, seed=1, max_retries=5,
        )
        report = WorkloadMixer(derby, config).run()
        assert report.deadlocks >= 1
        assert report.retries >= 1
        assert report.gave_up == 0
        assert report.committed == 8  # every op, despite the deadlocks

    def test_exhausted_retry_budget_becomes_permanent_abort(self):
        derby = fresh_derby()
        config = MixConfig(
            navigators=0, scanners=0, updaters=2,
            ops_per_client=4, hot_set=2, seed=1, max_retries=0,
        )
        mixer = WorkloadMixer(derby, config)
        report = mixer.run()
        assert report.retries == 0
        assert report.gave_up >= 1
        assert report.committed + report.gave_up == 8
        # The aborts really released everything.
        locks = mixer.service.txm.locks
        assert locks.lock_count == 0
        assert locks.waiting_count == 0


class TestAdmission:
    def test_max_active_one_serializes_the_mix(self):
        derby = fresh_derby()
        config = MixConfig.from_clients(
            3, ops_per_client=2, seed=2, max_active=1
        )
        mixer = WorkloadMixer(derby, config)
        report = mixer.run()
        gate = mixer.service.governor.gate
        assert gate is not None
        assert report.committed == 6  # admission never loses work
        assert report.max_queue_depth >= 1
        assert report.queue_wait_s > 0
        assert gate.queue_depth == 0  # drained
        assert gate.active_count == 0
        # Serialized ops cannot deadlock: whole ops hold the only slot.
        assert report.deadlocks == 0

    def test_gate_is_fifo_and_bounds_concurrency(self):
        derby = fresh_derby()
        service = QueryService(derby, max_active=1)
        gate = service.governor.gate
        order = []
        sessions = [service.open_session(f"s{i}") for i in range(3)]

        def body(session):
            def run():
                with session.admitted():
                    assert gate.active_count <= 1
                    order.append(session.name)
                    session.pause()  # hold the slot across a switch
                return session.name
            return run

        for session in sessions:
            service.spawn(session, body(session))
        service.run()
        service.close()
        assert order == ["s0", "s1", "s2"]  # strict FIFO admission
        assert gate.max_queue_depth == 2
        assert gate.queued_admissions == 2
        assert gate.admissions == 3


# --------------------------------------------------------- mix CSV round-trip


class TestMixCsvRoundTrip:
    def test_governor_columns_round_trip_through_csv(self):
        from repro.stats import mix_to_csv

        derby = fresh_derby()
        config = MixConfig(
            navigators=0, scanners=0, updaters=2,
            ops_per_client=4, hot_set=2, seed=1, max_retries=5,
        )
        report = WorkloadMixer(derby, config).run()
        lines = mix_to_csv(report).splitlines()
        header = lines[0].split(",")
        for column in ("retries", "cancelled", "over_budget",
                       "queue_wait_ms"):
            assert column in header
        parsed = {}
        for line in lines[1:]:
            values = dict(zip(header, line.split(",")))
            parsed[values["session"]] = values
        assert len(parsed) == 2
        for sr in report.sessions:
            row = parsed[sr.name]
            assert int(row["retries"]) == sr.metrics.retries
            assert int(row["cancelled"]) == sr.metrics.cancelled
            assert int(row["over_budget"]) == sr.metrics.over_budget
            assert float(row["queue_wait_ms"]) == pytest.approx(
                sr.metrics.queue_wait_s * 1_000.0, abs=1e-3
            )
        assert sum(int(parsed[s]["retries"]) for s in parsed) >= 1

    def test_stat_rows_round_trip_governor_counters(self):
        from repro.stats import StatsDatabase, to_csv

        stats = StatsDatabase()
        derby = fresh_derby()
        stats.record_experiment(
            algo="mix-updater", cluster="class", elapsed_s=1.0,
            meters=derby.db.counters.snapshot(),
            retries=3, cancelled=1, over_budget=2,
        )
        row = stats.rows()[0]
        assert (row.retries, row.cancelled, row.over_budget) == (3, 1, 2)
        header, line = to_csv([row]).splitlines()
        assert header.endswith("retries,cancelled,over_budget")
        assert line.endswith("3,1,2")
