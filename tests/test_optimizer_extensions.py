"""Tests for the extensions-aware optimizer: what would O2's optimizer
recommend if it *had* hybrid hashing and sort-merge joins?"""

from __future__ import annotations

import pytest

from repro.bench.workloads import tree_query_text
from repro.cluster import load_derby
from repro.derby import DerbyConfig
from repro.derby.config import Clustering
from repro.oql import Catalog, OQLEngine


@pytest.fixture(scope="module")
def derby_1to3():
    # Full default scale so hash tables genuinely outgrow memory.
    return load_derby(DerbyConfig.db_1to3(scale=0.01))


class TestExtensionsAwareOptimizer:
    def test_extended_plans_are_costed(self, derby_1to3):
        engine = OQLEngine(Catalog.from_derby(derby_1to3), include_extensions=True)
        plan = engine.plan(tree_query_text(derby_1to3.config, 10, 10))
        assert {"PHJ-HYBRID", "SMJ"} <= set(plan.alternatives)

    def test_default_engine_hides_extensions(self, derby_1to3):
        engine = OQLEngine(Catalog.from_derby(derby_1to3))
        plan = engine.plan(tree_query_text(derby_1to3.config, 10, 10))
        assert "PHJ-HYBRID" not in plan.alternatives

    def test_memory_bound_cell_prefers_memory_aware_plan(self, derby_1to3):
        """At 90/90 on 1:3 the plain hash joins thrash; with extensions
        available the optimizer must pick a plan that does not."""
        engine = OQLEngine(Catalog.from_derby(derby_1to3), include_extensions=True)
        plan = engine.plan(tree_query_text(derby_1to3.config, 90, 90))
        assert plan.algorithm in ("PHJ-HYBRID", "SMJ", "NOJOIN", "NL")
        alternatives = plan.alternatives
        assert alternatives[plan.algorithm].seconds < alternatives["PHJ"].seconds

    def test_memory_light_cell_keeps_the_classic_choice(self, derby_1to3):
        """Where memory is plentiful the extensions change nothing: the
        hybrid estimate collapses onto plain PHJ."""
        engine = OQLEngine(Catalog.from_derby(derby_1to3), include_extensions=True)
        plan = engine.plan(tree_query_text(derby_1to3.config, 10, 10))
        est = plan.alternatives
        assert est["PHJ-HYBRID"].seconds == pytest.approx(
            est["PHJ"].seconds, rel=0.05
        )

    def test_extended_plans_execute(self, derby_1to3):
        engine = OQLEngine(Catalog.from_derby(derby_1to3), include_extensions=True)
        text = tree_query_text(derby_1to3.config, 90, 90)
        plan = engine.plan(text)
        derby_1to3.start_cold_run()
        rows = engine.execute(text)
        assert len(rows) > 0
        # Cross-check against a classic plan's answer.
        classic = OQLEngine(Catalog.from_derby(derby_1to3))
        derby_1to3.start_cold_run()
        assert sorted(rows) == sorted(classic.execute(text))
