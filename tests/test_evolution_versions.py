"""Tests for dynamic class evolution and object versioning — the O2
features Section 4.4 cites among the reasons handles and headers are
heavy."""

from __future__ import annotations

import pytest

from repro.errors import ObjectError, SchemaError
from repro.objects import AttrKind, AttributeDef, Database, Schema
from repro.objects.header import FLAG_VERSIONED, ObjectHeader
from repro.objects.versions import VersionManager


def make_db() -> Database:
    schema = Schema()
    schema.define(
        "Patient",
        [
            AttributeDef("name", AttrKind.STRING),
            AttributeDef("mrn", AttrKind.INT32),
        ],
    )
    db = Database(schema)
    db.create_file("patients")
    return db


class TestSchemaEvolution:
    def test_evolve_bumps_version(self):
        db = make_db()
        evolved = db.schema.evolve(
            "Patient", [AttributeDef("age", AttrKind.INT32, default=0)]
        )
        assert evolved.schema_version == 1
        assert db.schema.cls("Patient") is evolved
        assert db.schema.class_version(evolved.class_id, 0).schema_version == 0

    def test_old_records_decode_with_old_layout(self):
        db = make_db()
        old_rid = db.create_object("Patient", {"name": "a", "mrn": 1}, "patients")
        db.schema.evolve(
            "Patient", [AttributeDef("age", AttrKind.INT32, default=-1)]
        )
        # The old record still reads fine...
        assert db.manager.get_attr_at(old_rid, "mrn") == 1
        # ...and the new attribute reports its default.
        assert db.manager.get_attr_at(old_rid, "age") == -1

    def test_new_records_use_new_layout(self):
        db = make_db()
        db.schema.evolve(
            "Patient", [AttributeDef("age", AttrKind.INT32, default=-1)]
        )
        rid = db.create_object(
            "Patient", {"name": "b", "mrn": 2, "age": 33}, "patients"
        )
        assert db.manager.get_attr_at(rid, "age") == 33
        record, class_def = db.manager.read_record(rid)
        assert ObjectHeader.peek_schema_version(record) == 1
        assert class_def.schema_version == 1

    def test_upgrade_record(self):
        db = make_db()
        old_rid = db.create_object("Patient", {"name": "a", "mrn": 1}, "patients")
        db.schema.evolve(
            "Patient", [AttributeDef("age", AttrKind.INT32, default=7)]
        )
        new_rid = db.manager.upgrade_record(old_rid)
        record, class_def = db.manager.read_record(new_rid)
        assert class_def.schema_version == 1
        assert db.manager.get_attr_at(new_rid, "age") == 7
        assert db.manager.get_attr_at(new_rid, "mrn") == 1

    def test_upgrade_is_idempotent(self):
        db = make_db()
        rid = db.create_object("Patient", {"mrn": 1}, "patients")
        db.schema.evolve("Patient", [AttributeDef("age", AttrKind.INT32)])
        once = db.manager.upgrade_record(rid)
        again = db.manager.upgrade_record(once)
        assert once == again

    def test_update_after_upgrade(self):
        db = make_db()
        rid = db.create_object("Patient", {"mrn": 1}, "patients")
        db.schema.evolve(
            "Patient", [AttributeDef("age", AttrKind.INT32, default=0)]
        )
        rid = db.manager.upgrade_record(rid)
        db.manager.update_scalar(rid, "age", 55)
        assert db.manager.get_attr_at(rid, "age") == 55

    def test_mixed_versions_scan_consistently(self):
        db = make_db()
        old = [
            db.create_object("Patient", {"mrn": i}, "patients")
            for i in range(5)
        ]
        db.schema.evolve(
            "Patient", [AttributeDef("age", AttrKind.INT32, default=99)]
        )
        new = [
            db.create_object("Patient", {"mrn": 5 + i, "age": i}, "patients")
            for i in range(5)
        ]
        ages = [db.manager.get_attr_at(r, "age") for r in old + new]
        assert ages == [99] * 5 + list(range(5))

    def test_duplicate_attribute_rejected(self):
        db = make_db()
        with pytest.raises(SchemaError):
            db.schema.evolve("Patient", [AttributeDef("mrn", AttrKind.INT32)])

    def test_set_attribute_evolution_rejected(self):
        db = make_db()
        with pytest.raises(SchemaError):
            db.schema.evolve(
                "Patient", [AttributeDef("friends", AttrKind.REF_SET)]
            )

    def test_unknown_version_rejected(self):
        db = make_db()
        cls = db.schema.cls("Patient")
        with pytest.raises(SchemaError):
            db.schema.class_version(cls.class_id, 3)

    def test_string_default(self):
        db = make_db()
        rid = db.create_object("Patient", {"mrn": 1}, "patients")
        db.schema.evolve(
            "Patient",
            [AttributeDef("city", AttrKind.STRING, default="Paris")],
        )
        assert db.manager.get_attr_at(rid, "city") == "Paris"
        fresh = db.create_object("Patient", {"mrn": 2}, "patients")
        # Omitted on creation -> encoded default.
        assert db.manager.get_attr_at(fresh, "city") == "Paris"


class TestObjectVersioning:
    def test_snapshot_read_restore(self):
        db = make_db()
        rid = db.create_object("Patient", {"name": "v1", "mrn": 1}, "patients")
        versions = VersionManager(db)
        info = versions.snapshot(rid, label="initial")
        assert info.version_no == 1
        db.manager.update_scalar(rid, "name", "v2")
        assert db.manager.get_attr_at(rid, "name") == "v2"
        assert versions.read_version(rid, 1)["name"] == "v1"
        versions.restore(rid, 1)
        assert db.manager.get_attr_at(rid, "name") == "v1"

    def test_version_chain(self):
        db = make_db()
        rid = db.create_object("Patient", {"name": "a", "mrn": 1}, "patients")
        versions = VersionManager(db)
        for i in range(3):
            db.manager.update_scalar(rid, "mrn", i)
            versions.snapshot(rid, label=f"step{i}")
        chain = versions.versions(rid)
        assert [v.version_no for v in chain] == [1, 2, 3]
        assert [versions.read_version(rid, v.version_no)["mrn"] for v in chain] == [
            0,
            1,
            2,
        ]

    def test_first_snapshot_marks_versioned_flag(self):
        db = make_db()
        rid = db.create_object("Patient", {"mrn": 1}, "patients")
        VersionManager(db).snapshot(rid)
        record, __ = db.manager.read_record(rid)
        assert ObjectHeader.decode(record).flags & FLAG_VERSIONED

    def test_unknown_version_rejected(self):
        db = make_db()
        rid = db.create_object("Patient", {"mrn": 1}, "patients")
        versions = VersionManager(db)
        with pytest.raises(ObjectError):
            versions.read_version(rid, 1)
        versions.snapshot(rid)
        with pytest.raises(ObjectError):
            versions.read_version(rid, 2)

    def test_snapshots_charge_time(self):
        db = make_db()
        rid = db.create_object("Patient", {"mrn": 1}, "patients")
        db.reset_meters()
        VersionManager(db).snapshot(rid)
        assert db.clock.elapsed_s > 0

    def test_snapshot_survives_schema_evolution(self):
        db = make_db()
        rid = db.create_object("Patient", {"name": "old", "mrn": 1}, "patients")
        versions = VersionManager(db)
        versions.snapshot(rid)
        db.schema.evolve(
            "Patient", [AttributeDef("age", AttrKind.INT32, default=3)]
        )
        rid = db.manager.upgrade_record(rid)
        # The old snapshot still decodes with its own (v0) layout.
        assert versions.read_version(rid, 1)["name"] == "old"
        assert "age" not in versions.read_version(rid, 1)