"""Unit tests for the storage substrate (rids, pages, disk, files)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import (
    PageFullError,
    RecordNotFoundError,
    RecordTooLargeError,
    StorageError,
)
from repro.storage import DirectPager, DiskManager, Page, Rid, StorageFile
from repro.storage.page import PAGE_HEADER_SIZE, SLOT_OVERHEAD
from repro.storage.rid import NIL_RID, is_nil
from repro.units import PAGE_SIZE, pages_for_bytes


# ---------------------------------------------------------------- Rid

class TestRid:
    def test_orders_by_physical_position(self):
        rids = [Rid(0, 5, 1), Rid(0, 2, 9), Rid(0, 2, 3), Rid(1, 0, 0)]
        assert sorted(rids) == [
            Rid(0, 2, 3),
            Rid(0, 2, 9),
            Rid(0, 5, 1),
            Rid(1, 0, 0),
        ]

    def test_nil_rid(self):
        assert is_nil(NIL_RID)
        assert not is_nil(Rid(0, 0, 0))

    def test_repr_is_compact(self):
        assert repr(Rid(2, 7, 3)) == "@2:7.3"

    def test_hashable(self):
        assert len({Rid(0, 0, 0), Rid(0, 0, 0), Rid(0, 0, 1)}) == 2


# ---------------------------------------------------------------- units

class TestUnits:
    def test_pages_for_bytes_rounds_up(self):
        assert pages_for_bytes(0) == 0
        assert pages_for_bytes(1) == 1
        assert pages_for_bytes(PAGE_SIZE) == 1
        assert pages_for_bytes(PAGE_SIZE + 1) == 2

    def test_pages_for_bytes_rejects_negative(self):
        with pytest.raises(ValueError):
            pages_for_bytes(-1)


# ---------------------------------------------------------------- Page

class TestPage:
    def test_insert_read_roundtrip(self):
        page = Page(0, 0)
        slot = page.insert(b"hello")
        assert page.read(slot) == b"hello"
        assert page.record_count == 1

    def test_slots_are_stable_across_deletes(self):
        page = Page(0, 0)
        s0 = page.insert(b"a")
        s1 = page.insert(b"b")
        page.delete(s0)
        assert page.read(s1) == b"b"
        with pytest.raises(RecordNotFoundError):
            page.read(s0)

    def test_free_space_accounting(self):
        page = Page(0, 0)
        before = page.free_bytes
        page.insert(b"x" * 100)
        assert page.free_bytes == before - 100 - SLOT_OVERHEAD
        assert page.used_bytes == 100 + SLOT_OVERHEAD

    def test_delete_reclaims_space(self):
        page = Page(0, 0)
        slot = page.insert(b"x" * 100)
        page.delete(slot)
        assert page.used_bytes == 0

    def test_page_full(self):
        page = Page(0, 0, page_size=128)
        page.insert(b"x" * 80)
        with pytest.raises(PageFullError):
            page.insert(b"y" * 80)

    def test_record_too_large(self):
        page = Page(0, 0)
        with pytest.raises(RecordTooLargeError):
            page.insert(b"x" * PAGE_SIZE)

    def test_slack_reserved(self):
        page = Page(0, 0, page_size=128)
        # capacity = 96; record of 60 fits raw but not with 40 slack
        assert page.fits(b"x" * 60)
        assert not page.fits(b"x" * 60, slack=40)
        with pytest.raises(PageFullError):
            page.insert(b"x" * 60, slack=40)

    def test_update_in_place(self):
        page = Page(0, 0)
        slot = page.insert(b"aaaa")
        assert page.update(slot, b"bbbbbbbb")
        assert page.read(slot) == b"bbbbbbbb"

    def test_update_refuses_when_page_cannot_grow(self):
        page = Page(0, 0, page_size=128)
        slot = page.insert(b"x" * 90)
        assert page.update(slot, b"y" * 200) is False
        assert page.read(slot) == b"x" * 90

    def test_forwarding(self):
        page = Page(0, 0)
        slot = page.insert(b"moved away")
        target = Rid(0, 9, 2)
        page.forward(slot, target)
        assert page.forward_target(slot) == target
        with pytest.raises(RecordNotFoundError):
            page.read(slot)
        assert slot not in page.slots()

    def test_capacity_matches_header(self):
        page = Page(0, 0)
        assert page.capacity == PAGE_SIZE - PAGE_HEADER_SIZE

    @given(
        st.lists(st.binary(min_size=1, max_size=200), min_size=1, max_size=30)
    )
    @settings(max_examples=50)
    def test_property_roundtrip_many_records(self, records):
        page = Page(0, 0)
        stored: dict[int, bytes] = {}
        for rec in records:
            if not page.fits(rec):
                break
            stored[page.insert(rec)] = rec
        for slot, rec in stored.items():
            assert page.read(slot) == rec
        assert page.record_count == len(stored)

    @given(st.data())
    @settings(max_examples=50)
    def test_property_used_plus_free_is_capacity(self, data):
        page = Page(0, 0)
        n = data.draw(st.integers(min_value=0, max_value=20))
        for __ in range(n):
            rec = data.draw(st.binary(min_size=1, max_size=150))
            if page.fits(rec):
                page.insert(rec)
        assert page.used_bytes + page.free_bytes == page.capacity


# ---------------------------------------------------------------- Disk

class TestDiskManager:
    def test_create_files(self):
        disk = DiskManager()
        f0, f1 = disk.create_file(), disk.create_file()
        assert f0 != f1
        assert disk.file_ids() == [f0, f1]
        assert disk.num_pages(f0) == 0

    def test_read_charges_io_and_counts(self):
        disk = DiskManager()
        fid = disk.create_file()
        disk.allocate_page(fid)
        disk.read_page(fid, 0)
        disk.read_page(fid, 0)
        assert disk.counters.disk_reads == 2
        assert disk.clock.elapsed_s == pytest.approx(
            2 * disk.params.page_read_ms / 1000.0
        )

    def test_write_counts(self):
        disk = DiskManager()
        fid = disk.create_file()
        page = disk.allocate_page(fid)
        page.dirty = True
        disk.write_page(fid, 0)
        assert disk.counters.disk_writes == 1
        assert not page.dirty

    def test_peek_is_free(self):
        disk = DiskManager()
        fid = disk.create_file()
        disk.allocate_page(fid)
        disk.peek_page(fid, 0)
        assert disk.counters.disk_reads == 0
        assert disk.clock.elapsed_s == 0.0

    def test_unknown_file_raises(self):
        disk = DiskManager()
        with pytest.raises(StorageError):
            disk.read_page(99, 0)

    def test_unknown_page_raises(self):
        disk = DiskManager()
        fid = disk.create_file()
        with pytest.raises(StorageError):
            disk.read_page(fid, 5)

    def test_total_pages(self):
        disk = DiskManager()
        f0, f1 = disk.create_file(), disk.create_file()
        disk.allocate_page(f0)
        disk.allocate_page(f1)
        disk.allocate_page(f1)
        assert disk.total_pages() == 3


# ---------------------------------------------------------------- File

def make_file(fill_factor: float = 0.85) -> StorageFile:
    disk = DiskManager()
    return StorageFile(disk, DirectPager(disk), fill_factor=fill_factor)


class TestStorageFile:
    def test_insert_and_read(self):
        sfile = make_file()
        rid = sfile.insert(b"record one")
        assert sfile.read(rid) == b"record one"
        assert sfile.record_count == 1

    def test_insertion_preserves_creation_order(self):
        sfile = make_file()
        rids = [sfile.insert(f"r{i}".encode()) for i in range(500)]
        assert rids == sorted(rids), "physical order must follow creation"

    def test_pages_fill_then_grow(self):
        sfile = make_file()
        record = b"x" * 100
        # capacity*fill ~ 3454 bytes -> 33 records of 104 bytes per page
        for __ in range(100):
            sfile.insert(record)
        assert sfile.num_pages == pytest.approx(100 // 33 + 1, abs=1)

    def test_fill_factor_leaves_slack(self):
        full = make_file(fill_factor=1.0)
        slacked = make_file(fill_factor=0.5)
        record = b"x" * 100
        for __ in range(100):
            full.insert(record)
            slacked.insert(record)
        assert slacked.num_pages > full.num_pages

    def test_update_in_place_keeps_rid(self):
        sfile = make_file()
        rid = sfile.insert(b"small")
        new_rid = sfile.update(rid, b"still small")
        assert new_rid == rid
        assert sfile.read(rid) == b"still small"

    def test_update_grow_moves_record_with_forwarding(self):
        sfile = make_file(fill_factor=1.0)
        rids = [sfile.insert(b"a" * 500) for __ in range(8)]
        big = b"b" * 3000
        new_rid = sfile.update(rids[0], big)
        assert new_rid != rids[0]
        assert sfile.disk.counters.records_moved == 1
        # Old rid still resolves through the forwarding entry.
        assert sfile.read(rids[0]) == big
        record, actual = sfile.read_resolving(rids[0])
        assert record == big
        assert actual == new_rid

    def test_scan_yields_each_live_record_once(self):
        sfile = make_file()
        payloads = [f"rec-{i}".encode() for i in range(200)]
        for p in payloads:
            sfile.insert(p)
        scanned = [record for __, record in sfile.scan()]
        assert scanned == payloads

    def test_scan_skips_forwarded_slot_but_keeps_record(self):
        sfile = make_file(fill_factor=1.0)
        rids = [sfile.insert(b"a" * 500) for __ in range(8)]
        sfile.update(rids[0], b"b" * 3000)
        scanned = [record for __, record in sfile.scan()]
        assert scanned.count(b"b" * 3000) == 1
        assert len(scanned) == 8

    def test_delete(self):
        sfile = make_file()
        rid = sfile.insert(b"doomed")
        sfile.delete(rid)
        assert sfile.record_count == 0
        with pytest.raises(RecordNotFoundError):
            sfile.read(rid)

    def test_foreign_rid_rejected(self):
        sfile = make_file()
        with pytest.raises(RecordNotFoundError):
            sfile.read(Rid(sfile.file_id + 1, 0, 0))

    def test_scan_charges_one_read_per_page(self):
        sfile = make_file()
        for __ in range(100):
            sfile.insert(b"x" * 100)
        sfile.disk.counters.reset()
        list(sfile.scan())
        assert sfile.disk.counters.disk_reads == sfile.num_pages

    @given(
        st.lists(
            st.binary(min_size=1, max_size=300), min_size=1, max_size=100
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_property_file_roundtrip(self, records):
        sfile = make_file()
        rids = [sfile.insert(rec) for rec in records]
        for rid, rec in zip(rids, records):
            assert sfile.read(rid) == rec
        assert [r for __, r in sfile.scan()] == records
