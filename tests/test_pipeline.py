"""Tests for the pipelined operator execution layer.

Covers the equivalence guarantee (a fully drained pipeline yields the
same rows and charges the same simulated time as the materializing
wrappers, at any batch size), early exit (``limit`` / first-batch
consumers pay a fraction of the full drain and leak nothing),
peak-live-row bounds, the batch-boundary scheduler yields, and the
``first_row_ms`` / ``peak_rows`` stats plumbing through to CSV.
"""

from __future__ import annotations

import pytest

from repro.cluster import load_derby
from repro.derby import DerbyConfig
from repro.derby.config import Clustering
from repro.errors import OQLSyntaxError
from repro.exec import ALGORITHMS, TreeJoinQuery
from repro.exec.operators import (
    DEFAULT_BATCH_SIZE,
    Cursor,
    Operator,
    PipelineContext,
)
from repro.exec.operators.joins import build_join
from repro.exec.operators.transforms import Distinct, Filter, Limit, Sort
from repro.oql import Catalog, OQLEngine
from repro.oql.parser import parse
from repro.oql.printer import print_query
from repro.service import MixConfig, QueryService, WorkloadMixer
from repro.simtime import Bucket, CostParams

SECTION5_ALGORITHMS = ("NL", "NOJOIN", "PHJ", "CHJ")
EXTENSION_ALGORITHMS = ("SMJ", "PHJ-HYBRID")
CLUSTERINGS = (Clustering.CLASS, Clustering.COMPOSITION, Clustering.RANDOM)
SCALE = 0.002


# ------------------------------------------------------------- fixtures

@pytest.fixture(scope="module")
def derby_cache():
    """One lazily built database per (relationship, clustering)."""
    cache = {}

    def get(relationship: str, clustering: Clustering):
        key = (relationship, clustering)
        if key not in cache:
            maker = (
                DerbyConfig.db_1to3
                if relationship == "1:3"
                else DerbyConfig.db_1to1000
            )
            cache[key] = load_derby(
                maker(scale=SCALE, clustering=clustering)
            )
        return cache[key]

    return get


@pytest.fixture(scope="module")
def big_derby():
    """The paper's big (1M-provider) database config, scaled down but
    large enough that a full patients scan dwarfs a ``limit 10``."""
    return load_derby(DerbyConfig.db_1to3(scale=0.005))


def fresh_tiny_derby():
    return load_derby(DerbyConfig.db_1to3(scale=0.00001))


def make_query(derby, sel_children=30, sel_parents=50) -> TreeJoinQuery:
    return TreeJoinQuery(
        db=derby.db,
        parent_index=derby.by_upin,
        child_index=derby.by_mrn,
        parent_high=derby.config.upin_threshold(sel_parents),
        child_high=derby.config.mrn_threshold(sel_children),
        n_parents=len(derby.provider_rids),
    )


def cost_snapshot(db):
    return (
        db.clock.elapsed_s,
        tuple(sorted(db.clock.breakdown().items())),
        db.counters.snapshot(),
    )


# ------------------------------------------- equivalence (the tentpole)

class TestJoinEquivalence:
    """Drained pipelines are row- and cost-identical to the wrappers at
    every batch size, for every algorithm x database x clustering."""

    @pytest.mark.parametrize("clustering", CLUSTERINGS,
                             ids=lambda c: c.value)
    @pytest.mark.parametrize("relationship", ("1:3", "1:1000"))
    @pytest.mark.parametrize("algorithm", SECTION5_ALGORITHMS)
    def test_section5_algorithms(
        self, derby_cache, algorithm, relationship, clustering
    ):
        self.check(derby_cache(relationship, clustering), algorithm)

    @pytest.mark.parametrize("algorithm", EXTENSION_ALGORITHMS)
    def test_extension_algorithms(self, derby_cache, algorithm):
        self.check(derby_cache("1:1000", Clustering.CLASS), algorithm)

    def check(self, derby, algorithm):
        q = make_query(derby)
        derby.start_cold_run()
        expected_rows = ALGORITHMS[algorithm](q)
        expected_cost = cost_snapshot(derby.db)
        for batch_size in (1, 17, DEFAULT_BATCH_SIZE):
            derby.start_cold_run()
            op = build_join(q, algorithm)
            rows = Cursor(op.ctx, op, batch_size).drain()
            assert rows == expected_rows, (algorithm, batch_size)
            assert cost_snapshot(derby.db) == expected_cost, (
                algorithm, batch_size
            )


class TestEngineEquivalence:
    QUERIES = (
        "select p.age from p in Patients where p.num > {num30}",
        "select tuple(m: p.mrn, a: p.age) from p in Patients "
        "where p.age < 50 order by p.age desc, p.mrn",
        "select avg(p.age) from p in Patients where p.mrn < {mrn40}",
        "select tuple(n: p.name, a: pa.age) "
        "from p in Providers, pa in p.clients "
        "where pa.mrn < {mrn30} and p.upin < {upin50}",
    )

    @pytest.mark.parametrize(
        "query", QUERIES,
        ids=("indexed", "order-by", "aggregate", "tree-join"),
    )
    def test_execute_iter_drained_equals_execute(self, derby_cache, query):
        derby = derby_cache("1:1000", Clustering.CLASS)
        c = derby.config
        oql = query.format(
            num30=c.num_threshold(30), mrn40=c.mrn_threshold(40),
            mrn30=c.mrn_threshold(30), upin50=c.upin_threshold(50),
        )
        engine = OQLEngine(Catalog.from_derby(derby))
        derby.start_cold_run()
        expected_rows = engine.execute(oql)
        expected_cost = cost_snapshot(derby.db)
        for batch_size in (1, 13, DEFAULT_BATCH_SIZE):
            derby.start_cold_run()
            rows = engine.execute_iter(oql, batch_size).drain()
            assert rows == expected_rows, batch_size
            assert cost_snapshot(derby.db) == expected_cost, batch_size


# --------------------------------------------------------- early exit

class TestEarlyExit:
    FULL = "select p.mrn from p in Patients where p.age >= 0"

    def test_limit_charges_under_5pct_of_full_scan(self, big_derby):
        derby = big_derby
        engine = OQLEngine(Catalog.from_derby(derby))
        derby.start_cold_run()
        start = cost_snapshot(derby.db)
        full_rows = engine.execute(self.FULL)
        full_s = derby.db.clock.elapsed_s - start[0]
        full_reads = derby.db.counters.snapshot().disk_reads \
            - start[2].disk_reads

        derby.start_cold_run()
        start = cost_snapshot(derby.db)
        limited = engine.execute(self.FULL + " limit 10")
        limit_s = derby.db.clock.elapsed_s - start[0]
        limit_reads = derby.db.counters.snapshot().disk_reads \
            - start[2].disk_reads

        assert limited == full_rows[:10]
        assert full_reads > 100  # the full scan really reads the extent
        assert limit_reads < 0.05 * full_reads
        assert limit_s < 0.05 * full_s
        stats = engine.last_stats
        assert stats.rows == 10
        assert stats.first_row_s is not None

    def test_first_batch_consumer_pays_a_fraction_and_leaks_nothing(
        self, big_derby
    ):
        derby = big_derby
        engine = OQLEngine(Catalog.from_derby(derby))
        derby.start_cold_run()
        engine.execute(self.FULL)
        full_s = derby.db.clock.elapsed_s

        derby.start_cold_run()
        cursor = engine.execute_iter(self.FULL, batch_size=16)
        batches = cursor.batches()
        first = next(batches)
        batches.close()  # abandon mid-stream -> the cursor closes
        assert len(first) == 16
        assert derby.db.clock.elapsed_s < 0.05 * full_s
        assert derby.db.handles.live_count == 0
        assert cursor.ctx.live_rows == 0

    def test_exists_query_streams_first_row_early(self, big_derby):
        derby = big_derby
        engine = OQLEngine(Catalog.from_derby(derby))
        oql = (
            "select p.name from p in Providers "
            "where exists pa in p.clients : pa.age >= 0"
        )
        derby.start_cold_run()
        engine.execute(oql)
        full_s = derby.db.clock.elapsed_s
        derby.start_cold_run()
        with engine.execute_iter(oql, batch_size=1) as cursor:
            row = next(iter(cursor))
        assert row is not None
        assert derby.db.clock.elapsed_s < 0.05 * full_s
        assert derby.db.handles.live_count == 0


# ------------------------------------------------------ peak live rows

class TestPeakRows:
    @pytest.mark.parametrize("batch_size", (1, 16, DEFAULT_BATCH_SIZE))
    def test_streaming_selection_bounded(self, derby_cache, batch_size):
        derby = derby_cache("1:1000", Clustering.CLASS)
        engine = OQLEngine(Catalog.from_derby(derby))
        root = engine.compile(
            "select p.age from p in Patients where p.age >= 0"
        )
        derby.start_cold_run()
        cursor = Cursor(root.ctx, root, batch_size)
        rows = cursor.drain()
        assert rows
        assert cursor.stats.peak_rows <= batch_size * root.depth
        assert cursor.ctx.live_rows == 0

    @pytest.mark.parametrize("algorithm", ("NL", "NOJOIN", "PHJ"))
    @pytest.mark.parametrize("relationship", ("1:3", "1:1000"))
    def test_streaming_joins_bounded(
        self, derby_cache, relationship, algorithm
    ):
        derby = derby_cache(relationship, Clustering.CLASS)
        derby.start_cold_run()
        batch_size = 8
        op = build_join(make_query(derby), algorithm)
        cursor = Cursor(op.ctx, op, batch_size)
        rows = cursor.drain()
        assert rows
        assert cursor.stats.peak_rows <= batch_size * op.depth
        assert cursor.ctx.live_rows == 0


# ------------------------------------------------------ operator units

class ListSource(Operator):
    """Emits a fixed row list in batches (test scaffolding)."""

    def __init__(self, ctx, rows):
        super().__init__(ctx)
        self.rows = list(rows)
        self._pos = 0

    def _next(self, n):
        batch = self.rows[self._pos:self._pos + n]
        self._pos += len(batch)
        return batch


class TestOperatorUnits:
    @pytest.fixture()
    def ctx(self):
        derby = fresh_tiny_derby()
        return PipelineContext(derby.db)

    def test_lifecycle_is_enforced_and_idempotent(self, ctx):
        op = ListSource(ctx, [1, 2, 3])
        with pytest.raises(RuntimeError):
            op.next_batch(2)
        op.open()
        op.open()  # idempotent
        assert op.next_batch(2) == [1, 2]
        op.close()
        op.close()  # idempotent
        with pytest.raises(RuntimeError):
            op.next_batch(2)

    def test_filter_never_emits_a_spurious_empty_batch(self, ctx):
        source = ListSource(ctx, list(range(100)))
        op = Filter(ctx, source, lambda v: v >= 99)
        op.open()
        # 99 consecutive rejects must not surface as an empty batch.
        assert op.next_batch(10) == [99]
        assert op.next_batch(10) == []
        op.close()

    def test_limit_clamps_and_early_exits(self, ctx):
        source = ListSource(ctx, list(range(50)))
        op = Limit(ctx, source, 7)
        op.open()
        assert op.next_batch(5) == [0, 1, 2, 3, 4]
        assert op.next_batch(5) == [5, 6]
        assert op.next_batch(5) == []
        # The source was never pulled past the quota.
        assert source._pos == 7
        op.close()
        with pytest.raises(ValueError):
            Limit(ctx, source, -1)

    def test_distinct_keeps_first_seen_order(self, ctx):
        op = Distinct(ctx, ListSource(ctx, [3, 1, 3, 2, 1, 4]))
        op.open()
        assert op.next_batch(10) == [3, 1, 2, 4]
        op.close()

    def test_sort_orders_and_charges_sort_bucket(self, ctx):
        rows = [((30,), "c"), ((10,), "a"), ((20,), "b")]
        op = Sort(ctx, ListSource(ctx, rows), [("age", "desc")])
        op.open()
        before = ctx.db.clock.bucket_s(Bucket.SORT)
        assert op.next_batch(10) == ["c", "b", "a"]
        assert ctx.db.clock.bucket_s(Bucket.SORT) > before
        op.close()
        assert ctx.live_rows == 0

    def test_depth_counts_tree_height(self, ctx):
        source = ListSource(ctx, [1])
        assert source.depth == 1
        assert Limit(ctx, Filter(ctx, source, bool), 1).depth == 3

    def test_live_row_accounting_peaks_and_drains(self, ctx):
        op = ListSource(ctx, list(range(40)))
        cursor = Cursor(ctx, op, batch_size=8)
        assert cursor.drain() == list(range(40))
        assert ctx.stats.peak_rows == 8
        assert ctx.stats.rows == 40
        assert ctx.stats.batches == 5
        assert ctx.live_rows == 0

    def test_cursor_on_close_fires_exactly_once(self, ctx):
        fired = []
        cursor = Cursor(ctx, ListSource(ctx, [1, 2]), batch_size=4)
        cursor.on_close = lambda: fired.append(True)
        cursor.drain()
        cursor.close()
        assert fired == [True]
        with pytest.raises(ValueError):
            Cursor(ctx, ListSource(ctx, []), batch_size=0)


# ----------------------------------------------------------- OQL limit

class TestOqlLimit:
    def test_parse_and_print_round_trip(self):
        query = parse(
            "select p.age from p in Patients where p.num > 5 limit 10"
        )
        assert query.limit == 10
        assert print_query(query).endswith("limit 10")
        assert parse(print_query(query)).limit == 10

    def test_no_limit_is_none(self):
        assert parse("select p.age from p in Patients").limit is None

    def test_limit_requires_an_integer(self):
        with pytest.raises(OQLSyntaxError):
            parse("select p.age from p in Patients limit ten")


# ------------------------------------------- service batch boundaries

class TestServiceBatching:
    SCAN = "select p.mrn from p in Patients where p.age >= 0"

    def run_mix(self, batch_size):
        config = MixConfig.from_clients(
            4, ops_per_client=2, seed=5, batch_size=batch_size,
            scan_selectivity_pct=90.0,  # ~25 rows on the tiny database
        )
        mixer = WorkloadMixer(fresh_tiny_derby(), config)
        report = mixer.run()
        return report, mixer.service.scheduler

    def test_scanners_yield_at_batch_boundaries_deterministically(self):
        r1, s1 = self.run_mix(batch_size=4)
        r2, s2 = self.run_mix(batch_size=4)
        assert s1.batch_yields > 0
        # The interleaving is deterministic: identical yields, switches
        # and outcomes on a fresh database.
        assert s1.batch_yields == s2.batch_yields
        assert s1.context_switches == s2.context_switches
        assert r1.elapsed_s == pytest.approx(r2.elapsed_s)
        assert (r1.committed, r1.aborted, r1.deadlocks, r1.timeouts) == (
            r2.committed, r2.aborted, r2.deadlocks, r2.timeouts
        )

    def test_batch_size_changes_interleaving_not_outcomes(self):
        fine, fine_sched = self.run_mix(batch_size=2)
        coarse, coarse_sched = self.run_mix(batch_size=None)
        assert fine_sched.batch_yields > coarse_sched.batch_yields
        assert (fine.committed, fine.aborted, fine.deadlocks) == (
            coarse.committed, coarse.aborted, coarse.deadlocks
        )

    def test_switch_trace_interleaves_scans_at_batch_boundaries(self):
        derby = fresh_tiny_derby()
        derby.start_cold_run()
        service = QueryService(derby)
        one = service.open_session("one")
        two = service.open_session("two")
        one.batch_size = two.batch_size = 4
        trace = []
        inner = service.scheduler.on_switch
        service.scheduler.on_switch = lambda task: (
            trace.append(task.name), inner(task)
        )
        service.spawn(one, lambda: one.execute(self.SCAN))
        service.spawn(two, lambda: two.execute(self.SCAN))
        tasks = service.run()
        service.close()
        assert [t.error for t in tasks] == [None, None]
        assert service.scheduler.batch_yields > 0
        # Both queries return > batch_size rows, so the baton must have
        # alternated mid-query rather than running each scan to the end.
        handoffs = [
            (a, b) for a, b in zip(trace, trace[1:]) if a != b
        ]
        assert len(handoffs) > 2
        assert one.metrics.batches > 1
        assert one.metrics.peak_rows <= 4 * 4  # batch x depth bound
        assert one.metrics.mean_first_row_ms > 0

    def test_session_metrics_fold_in_pipeline_stats(self):
        derby = fresh_tiny_derby()
        derby.start_cold_run()
        service = QueryService(derby)
        session = service.open_session("s")
        service.spawn(session, lambda: session.execute(self.SCAN))
        service.run()
        service.close()
        m = session.metrics
        assert m.queries == 1
        assert m.batches >= 1
        assert m.first_row_samples == 1
        assert m.mean_first_row_ms > 0
        assert m.peak_rows > 0


# -------------------------------------------------------- stats / CSV

class TestStatsPlumbing:
    def test_record_experiment_round_trips_pipeline_columns(self):
        from repro.stats import StatsDatabase, to_csv

        derby = fresh_tiny_derby()
        stats = StatsDatabase()
        stats.record_experiment(
            algo="NL", cluster="class", elapsed_s=1.5,
            meters=derby.db.counters.snapshot(),
            first_row_ms=12.5, peak_rows=77,
        )
        stats.record_experiment(
            algo="PHJ", cluster="class", elapsed_s=2.5,
            meters=derby.db.counters.snapshot(),
        )
        rows = stats.rows()
        assert rows[0].first_row_ms == 12.5
        assert rows[0].peak_rows == 77
        assert rows[1].first_row_ms == 0.0
        assert rows[1].peak_rows == 0
        csv = to_csv(rows)
        header, first, __ = csv.splitlines()
        assert header.endswith(
            "first_row_ms,peak_rows,retries,cancelled,over_budget"
        )
        assert first.endswith("12.5000,77,0,0,0")

    def test_mix_records_and_exports_pipeline_columns(self):
        from repro.stats import StatsDatabase, mix_to_csv

        stats = StatsDatabase()
        config = MixConfig.from_clients(
            3, ops_per_client=1, seed=2, batch_size=4
        )
        report = WorkloadMixer(
            fresh_tiny_derby(), config, stats=stats
        ).run()
        scanner_stat = [r for r in stats.rows() if r.algo == "mix-scanner"]
        assert scanner_stat[0].first_row_ms > 0
        assert scanner_stat[0].peak_rows > 0
        csv = mix_to_csv(report)
        lines = csv.splitlines()
        header = lines[0].split(",")
        assert header[-6:] == [
            "first_row_ms", "peak_rows", "retries",
            "cancelled", "over_budget", "queue_wait_ms",
        ]
        scanner_line = next(
            line for line in lines if line.startswith("scanner")
        )
        peak = int(scanner_line.split(",")[header.index("peak_rows")])
        assert peak > 0

    def test_mix_cli_accepts_batch_size(self, capsys):
        from repro.cli import main

        assert main([
            "mix", "--db", "1to3", "--scale", "0.00001",
            "--clients", "2", "--ops", "1", "--batch-size", "4",
        ]) == 0
        assert "aggregate" in capsys.readouterr().out
