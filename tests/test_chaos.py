"""Tests for the seeded transient-fault chaos checker."""

from __future__ import annotations

from repro.service.chaos import ChaosResult, run_case, run_chaos, summarize


class TestChaosChecker:
    def test_smoke_cases_hold_the_robustness_contract(self):
        # Each case injects seeded faults into a fresh mix and asserts
        # zero leaked locks/handles, committed-visible, uncommitted-gone
        # and a bit-identical double run.
        results = run_chaos(8, base_seed=0)
        assert len(results) == 8
        for r in results:
            assert r.ok, f"seed {r.seed}: {r.failures}"
        # The grid actually exercised the machinery somewhere.
        assert sum(r.committed for r in results) > 0
        assert any(r.storms for r in results)

    def test_case_digest_is_reproducible(self):
        a = run_case(3, check_determinism=False)
        b = run_case(3, check_determinism=False)
        assert a.ok and b.ok
        assert a.digest == b.digest
        assert (a.committed, a.aborted, a.retries, a.io_faults) == (
            b.committed, b.aborted, b.retries, b.io_faults
        )

    def test_faults_are_actually_injected_somewhere(self):
        results = run_chaos(8, base_seed=0, check_determinism=False)
        assert sum(r.io_faults for r in results) >= 1

    def test_summarize_reports_the_aggregate(self):
        results = [
            ChaosResult(
                seed=0, clients=2, ops_per_client=2, read_fault_rate=0.01,
                storms=True, committed=4, aborted=0, retries=0,
                io_faults=1,
            ),
            ChaosResult(
                seed=1, clients=3, ops_per_client=2, read_fault_rate=0.05,
                storms=False, committed=5, aborted=1, retries=1,
                io_faults=0, failures=["1 locks leaked"],
            ),
        ]
        text = str(summarize(results))
        assert "1/2 cases clean" in text
        assert "9 commits" in text
        assert "FAIL" in text
