"""Stateful (model-based) testing of the B+-tree against a reference
implementation, using hypothesis rule-based state machines."""

from __future__ import annotations

import bisect

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)

from repro.index import BTreeIndex
from repro.storage import DirectPager, DiskManager, Rid

_KEYS = st.integers(min_value=-1000, max_value=1000)


class BTreeMachine(RuleBasedStateMachine):
    """Drive the B+-tree with random inserts/removes/scans and compare
    every observable against a sorted-list reference model."""

    @initialize()
    def setup(self):
        disk = DiskManager()
        from repro.storage import StorageFile

        index_file = StorageFile(disk, DirectPager(disk))
        # A small leaf capacity exercises splits constantly.
        self.index = BTreeIndex("model", 1, index_file, int, leaf_capacity=8)
        self.model: list[tuple[int, Rid]] = []
        self.counter = 0

    @rule(key=_KEYS)
    def insert(self, key):
        rid = Rid(0, self.counter, 0)
        self.counter += 1
        self.index.insert(key, rid)
        bisect.insort(self.model, (key, rid))

    @rule(key=_KEYS)
    def remove_one(self, key):
        matches = [pair for pair in self.model if pair[0] == key]
        if matches:
            assert self.index.remove(key, matches[0][1])
            self.model.remove(matches[0])
        else:
            assert not self.index.remove(key, Rid(0, 999_999, 0))

    @rule(key=_KEYS)
    def lookup(self, key):
        expected = [rid for k, rid in self.model if k == key]
        assert self.index.lookup(key) == expected

    @rule(low=_KEYS, high=_KEYS)
    def range_scan(self, low, high):
        if low > high:
            low, high = high, low
        expected = [(k, r) for k, r in self.model if low <= k <= high]
        scanned = [
            (e.key, e.rid) for e in self.index.range_scan(low, high)
        ]
        assert scanned == expected

    @invariant()
    def count_matches(self):
        if hasattr(self, "model"):
            assert self.index.entry_count == len(self.model)

    @invariant()
    def full_scan_is_sorted_model(self):
        if hasattr(self, "model"):
            scanned = [(e.key, e.rid) for e in self.index.range_scan()]
            assert scanned == self.model


BTreeMachine.TestCase.settings = settings(
    max_examples=25, stateful_step_count=40, deadline=None
)
TestBTreeStateful = BTreeMachine.TestCase
