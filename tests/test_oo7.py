"""Tests for the miniature OO7 benchmark."""

from __future__ import annotations

import pytest

from repro.objects.handle import HandleMode
from repro.oo7 import (
    OO7Config,
    build_oo7,
    query_q1,
    traversal_t1,
    traversal_t2,
    traversal_t6,
)


@pytest.fixture(scope="module")
def oo7():
    return build_oo7(OO7Config())


class TestBuilder:
    def test_structural_counts(self, oo7):
        cfg = oo7.config
        assert cfg.n_base_assemblies == 27
        assert cfg.n_composite_parts == 81
        assert cfg.n_atomic_parts == 1620
        assert len(oo7.atomic_parts) == cfg.n_atomic_parts
        assert len(oo7.composite_parts) == cfg.n_composite_parts
        assert oo7.by_atomic_id.entry_count == cfg.n_atomic_parts

    def test_every_atomic_part_reachable_by_id(self, oo7):
        om = oo7.db.manager
        for part_id in (1, 500, 1620):
            (rid,) = oo7.by_atomic_id.lookup(part_id)
            assert om.get_attr_at(rid, "id") == part_id

    def test_connections_form_regular_graph(self, oo7):
        om, db = oo7.db.manager, oo7.db
        (rid,) = oo7.by_atomic_id.lookup(7)
        handle = om.load(rid)
        conn = om.get_attr(handle, "conn_out")
        om.unref(handle)
        targets = list(db.iter_set_rids(conn))
        assert len(targets) == oo7.config.connections_per_atomic
        assert rid not in targets


class TestTraversals:
    def test_t1_visits_everything(self, oo7):
        oo7.start_cold_run()
        result = traversal_t1(oo7)
        cfg = oo7.config
        assert result.visited_atomic == cfg.n_atomic_parts
        expected_assemblies = sum(
            cfg.assembly_fanout**level for level in range(cfg.assembly_levels)
        )
        assert result.visited_assemblies == expected_assemblies
        assert result.elapsed_s > 0
        assert result.page_reads > 0

    def test_t6_visits_only_roots(self, oo7):
        oo7.start_cold_run()
        result = traversal_t6(oo7)
        assert result.visited_atomic == oo7.config.n_composite_parts

    def test_warm_t1_does_no_io(self, oo7):
        oo7.start_cold_run()
        traversal_t1(oo7)
        warm = traversal_t1(oo7)
        assert warm.page_reads == 0

    def test_composition_layout_makes_t1_sequentialish(self, oo7):
        """Each composite part's atomic graph lives on 2-3 contiguous
        pages, so T1's page reads are close to the file size, not to the
        number of pointer hops."""
        oo7.start_cold_run()
        result = traversal_t1(oo7)
        file_pages = oo7.db.file("design").num_pages
        hops = result.visited_atomic * oo7.config.connections_per_atomic
        assert result.page_reads < file_pages * 2
        assert result.page_reads < hops / 10


class TestQ1:
    def test_all_lookups_found(self, oo7):
        oo7.start_cold_run()
        assert query_q1(oo7, lookups=25) == 25


class TestT2Updates:
    def test_t2a_swaps_roots(self):
        oo7 = build_oo7(OO7Config())
        om = oo7.db.manager
        part_rid = next(iter(oo7.composite_parts.iter_rids()))
        handle = om.load(part_rid)
        root = om.get_attr(handle, "root_part")
        om.unref(handle)
        x0 = om.get_attr_at(root, "x")
        y0 = om.get_attr_at(root, "y")
        oo7.start_cold_run()
        result = traversal_t2(oo7, "a")
        assert result.visited_atomic == oo7.config.n_composite_parts
        assert om.get_attr_at(root, "x") == y0
        assert om.get_attr_at(root, "y") == x0

    def test_t2b_updates_everything(self):
        oo7 = build_oo7(OO7Config())
        oo7.start_cold_run()
        result = traversal_t2(oo7, "b")
        assert result.visited_atomic == oo7.config.n_atomic_parts

    def test_t2_dirties_pages_for_the_next_flush(self):
        oo7 = build_oo7(OO7Config())
        oo7.start_cold_run()
        traversal_t2(oo7, "a")
        writes_before = oo7.db.counters.disk_writes
        oo7.db.shutdown()
        assert oo7.db.counters.disk_writes > writes_before

    def test_t2_twice_restores_original(self):
        oo7 = build_oo7(OO7Config())
        om = oo7.db.manager
        (rid,) = oo7.by_atomic_id.lookup(1)
        x0 = om.get_attr_at(rid, "x")
        traversal_t2(oo7, "b")
        traversal_t2(oo7, "b")
        assert om.get_attr_at(rid, "x") == x0

    def test_unknown_variant_rejected(self, oo7):
        with pytest.raises(ValueError):
            traversal_t2(oo7, "z")


class TestHandleModesOnOO7:
    def test_cures_do_not_hurt_warm_navigation(self):
        """The paper's closing claim: the Section 4.4 handle cures speed
        up cold associative access 'without hurting main memory
        navigation'.  Warm T1 under every cure must cost no more than
        under full handles."""
        def warm_t1_seconds(mode: HandleMode) -> float:
            oo7 = build_oo7(OO7Config(), handle_mode=mode)
            oo7.start_cold_run()
            traversal_t1(oo7)           # warm the caches and handles
            before = oo7.db.clock.elapsed_s
            traversal_t1(oo7)
            return oo7.db.clock.elapsed_s - before

        full = warm_t1_seconds(HandleMode.FULL)
        for mode in (
            HandleMode.COMPACT_LITERALS,
            HandleMode.INLINE_TUPLES,
            HandleMode.BULK,
        ):
            assert warm_t1_seconds(mode) <= full * 1.01, mode
