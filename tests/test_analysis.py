"""Tests for the analysis package: cost-model regression and optimizer
validation."""

from __future__ import annotations

import pytest

from repro.analysis import fit_cost_model, score_optimizer
from repro.analysis.regression import FEATURES, CostFit
from repro.bench import ExperimentRunner
from repro.bench.figures import PAPER_ALGORITHMS
from repro.bench.workloads import SELECTIVITY_GRID
from repro.cluster import load_derby
from repro.derby import DerbyConfig
from repro.derby.config import Clustering
from repro.errors import BenchError
from repro.simtime import CostParams


@pytest.fixture(scope="module")
def derby():
    cfg = DerbyConfig(
        n_providers=40,
        n_patients=1200,
        clustering=Clustering.CLASS,
        scale=0.002,
        params=CostParams().scaled(0.002),
    )
    return load_derby(cfg)


@pytest.fixture(scope="module")
def grid_measurements(derby):
    runner = ExperimentRunner(derby)
    ms = runner.run_join_grid(PAPER_ALGORITHMS, SELECTIVITY_GRID)
    # Add selection runs for feature diversity.
    for method in ("scan", "index", "sorted-index"):
        for sel in (5, 30, 70):
            ms.append(runner.run_selection(method, sel))
    return ms


class TestRegression:
    def test_needs_enough_runs(self, grid_measurements):
        with pytest.raises(BenchError):
            fit_cost_model(grid_measurements[:2])

    def test_fit_quality(self, grid_measurements):
        fit = fit_cost_model(grid_measurements)
        assert fit.n_runs == len(grid_measurements)
        assert fit.r_squared > 0.95

    def test_recovers_page_cost(self, grid_measurements):
        """The fitted per-page coefficient should land near the true
        page_read + transfer + rpc cost (10 + 1 + 0.2 ms)."""
        fit = fit_cost_model(grid_measurements)
        assert 7.0 < fit.page_read_ms + fit.coefficients["rpcs"] * 1000 + (
            fit.coefficients["transfer_pages"] * 1000
        ) < 16.0

    def test_recovers_result_cost(self, grid_measurements):
        """Result construction is ~600 us/element in the simulator; the
        regression should see a same-order coefficient."""
        fit = fit_cost_model(grid_measurements)
        assert 200 < fit.result_us < 1200

    def test_nonnegative_coefficients(self, grid_measurements):
        fit = fit_cost_model(grid_measurements)
        assert all(c >= 0 for c in fit.coefficients.values())

    def test_prediction_close_on_training_data(self, grid_measurements):
        fit = fit_cost_model(grid_measurements)
        worst = max(
            abs(fit.predict(run) - run.elapsed_s)
            / max(run.elapsed_s, 1e-9)
            for run in grid_measurements
            if run.elapsed_s > 0.5  # ignore tiny runs
        )
        assert worst < 0.5

    def test_generalizes_to_unseen_cell(self, derby, grid_measurements):
        fit = fit_cost_model(grid_measurements)
        fresh = ExperimentRunner(derby).run_join("PHJ", 50, 50)
        assert fit.predict(fresh) == pytest.approx(
            fresh.elapsed_s, rel=0.35
        )

    def test_feature_set_is_stable(self):
        assert set(FEATURES) == {
            "disk_pages",
            "transfer_pages",
            "rpcs",
            "handle_ops",
            "swap_faults",
            "result_rows",
        }

    def test_costfit_is_plain_data(self, grid_measurements):
        fit = fit_cost_model(grid_measurements)
        assert isinstance(fit, CostFit)
        assert isinstance(fit.coefficients["disk_pages"], float)


class TestOptimizerValidation:
    def test_score_structure(self, derby, grid_measurements):
        joins = [m for m in grid_measurements if hasattr(m, "algo")]
        score = score_optimizer(derby, joins)
        assert len(score.verdicts) == 4
        assert score.wins >= 0
        assert score.mean_regret >= 1.0

    def test_optimizer_is_never_catastrophic(self, derby, grid_measurements):
        """The whole point of a cost model: even when it misses the
        winner, the choice must not be NL-at-90/90-class bad."""
        joins = [m for m in grid_measurements if hasattr(m, "algo")]
        score = score_optimizer(derby, joins)
        assert score.max_regret < 2.5

    def test_optimizer_mostly_right(self, derby, grid_measurements):
        joins = [m for m in grid_measurements if hasattr(m, "algo")]
        score = score_optimizer(derby, joins)
        assert score.mean_regret < 1.5
