"""Failure-path tests: dangling references, oversize records, cache
stress, and other ways real workloads go wrong."""

from __future__ import annotations

import pytest

from repro.buffer import ClientServerSystem
from repro.errors import (
    DanglingReferenceError,
    ObjectError,
    RecordNotFoundError,
    RecordTooLargeError,
    SchemaError,
)
from repro.objects import AttrKind, AttributeDef, Database, Schema
from repro.simtime import MemoryModel
from repro.storage import DiskManager, Rid, StorageFile
from repro.units import PAGE_SIZE


def make_db(extra_width: int = 16) -> Database:
    schema = Schema()
    schema.define(
        "Doc",
        [
            AttributeDef("title", AttrKind.STRING, width=extra_width),
            AttributeDef("n", AttrKind.INT32),
            AttributeDef("parts", AttrKind.REF_SET),
        ],
    )
    db = Database(schema)
    db.create_file("docs")
    return db


class TestDanglingReferences:
    def test_deleted_target_raises(self):
        db = make_db()
        victim = db.create_object("Doc", {"n": 1}, "docs")
        owner = db.create_object("Doc", {"n": 2, "parts": [victim]}, "docs")
        db.file("docs").delete(victim)
        handle = db.manager.load(owner)
        parts = db.manager.get_attr(handle, "parts")
        db.manager.unref(handle)
        (dangling,) = list(db.iter_set_rids(parts))
        with pytest.raises(RecordNotFoundError):
            db.manager.load(dangling)

    def test_unregistered_file_reference(self):
        db = make_db()
        with pytest.raises(DanglingReferenceError):
            db.manager.load(Rid(42, 0, 0))

    def test_handle_survives_failed_load(self):
        """A failed load must not leave a half-made handle behind."""
        db = make_db()
        rid = db.create_object("Doc", {"n": 1}, "docs")
        db.file("docs").delete(rid)
        with pytest.raises(RecordNotFoundError):
            db.manager.load(rid)
        assert db.handles.live_count == 0


class TestOversizeRecords:
    def test_record_too_large(self):
        db = make_db(extra_width=5000)  # a 5 KB string cannot fit a page
        with pytest.raises(RecordTooLargeError):
            db.create_object("Doc", {"title": "x" * 5000, "n": 1}, "docs")

    def test_unknown_attribute_on_create_is_ignored_but_known_required(self):
        db = make_db()
        # Unknown keys in the value dict are simply not encoded.
        rid = db.create_object("Doc", {"n": 1, "bogus": 9}, "docs")
        handle = db.manager.load(rid)
        with pytest.raises(SchemaError):
            db.manager.get_attr(handle, "bogus")
        db.manager.unref(handle)


class TestCacheStress:
    def test_single_page_caches_still_correct(self):
        """Pathological configuration: one-page caches force a write-back
        on nearly every access, but no data may be lost."""
        disk = DiskManager()
        memory = MemoryModel(
            ram_bytes=100 * PAGE_SIZE,
            server_cache_bytes=PAGE_SIZE,
            client_cache_bytes=PAGE_SIZE,
            system_reserved_bytes=0,
        )
        system = ClientServerSystem(disk, memory)
        sfile = StorageFile(disk, system)
        payloads = [f"record-{i}".encode() * 10 for i in range(200)]
        rids = [sfile.insert(p) for p in payloads]
        system.shutdown()
        for rid, payload in zip(rids, payloads):
            assert sfile.read(rid) == payload

    def test_interleaved_updates_under_tiny_cache(self):
        disk = DiskManager()
        memory = MemoryModel(
            ram_bytes=100 * PAGE_SIZE,
            server_cache_bytes=PAGE_SIZE,
            client_cache_bytes=2 * PAGE_SIZE,
            system_reserved_bytes=0,
        )
        system = ClientServerSystem(disk, memory)
        sfile = StorageFile(disk, system)
        rids = [sfile.insert(b"v0" + bytes([i % 250])) for i in range(300)]
        for i, rid in enumerate(rids):
            sfile.update(rid, b"v1" + bytes([i % 250]))
        system.shutdown()
        for i, rid in enumerate(rids):
            assert sfile.read(rid) == b"v1" + bytes([i % 250])


class TestDatabaseMisuse:
    def test_double_file_creation(self):
        db = make_db()
        with pytest.raises(ObjectError):
            db.create_file("docs")

    def test_unknown_class(self):
        db = make_db()
        with pytest.raises(SchemaError):
            db.create_object("Ghost", {}, "docs")

    def test_unknown_file(self):
        db = make_db()
        with pytest.raises(ObjectError):
            db.create_object("Doc", {"n": 1}, "ghost-file")

    def test_iter_set_rids_rejects_non_set(self):
        db = make_db()
        with pytest.raises(SchemaError):
            list(db.iter_set_rids("not a set"))

    def test_update_scalar_on_set_attr_rejected(self):
        db = make_db()
        rid = db.create_object("Doc", {"n": 1}, "docs")
        with pytest.raises(SchemaError):
            db.manager.update_scalar(rid, "parts", [])


class TestForwardingChains:
    def test_repeated_growth_keeps_old_rids_resolvable(self):
        """Grow the same record several times: the original rid must
        keep resolving (single-hop forwarding is maintained by always
        re-forwarding from the original slot)."""
        disk = DiskManager()
        from repro.storage import DirectPager

        sfile = StorageFile(disk, DirectPager(disk), fill_factor=1.0)
        filler = [sfile.insert(b"f" * 900) for __ in range(4)]
        del filler
        rid = sfile.insert(b"s")
        current = rid
        for size in (2000, 2500, 3000):
            current = sfile.update(current, b"x" * size)
        assert sfile.read(rid) == b"x" * 3000

    def test_chain_collapses_when_updating_through_original_rid(self):
        """Move a record repeatedly *through its original rid*: the
        forwarding pointer must follow it (no multi-hop chains)."""
        disk = DiskManager()
        from repro.storage import DirectPager

        sfile = StorageFile(disk, DirectPager(disk), fill_factor=1.0)
        for __ in range(4):
            sfile.insert(b"f" * 900)
        rid = sfile.insert(b"s")
        # Each update grows the record to a size that cannot stay on its
        # current page (alongside a fresh filler), always addressing it
        # by the ORIGINAL rid.
        for size in (2000, 3500, 3900):
            moved = sfile.update(rid, b"y" * size)
            assert moved != rid
            sfile.insert(b"f" * 500)  # make the new page tight
        record, actual = sfile.read_resolving(rid)
        assert record == b"y" * 3900
        assert actual != rid
