"""Unit tests for the transaction subsystem."""

from __future__ import annotations

import pytest

from repro.errors import (
    LockConflictError,
    TransactionMemoryError,
    TransactionStateError,
)
from repro.objects import AttrKind, AttributeDef, Database, Schema
from repro.simtime import Bucket, CostParams, SimClock
from repro.storage.rid import Rid
from repro.txn import LockManager, LockMode, TransactionManager, WriteAheadLog


def make_db() -> Database:
    schema = Schema()
    schema.define("Thing", [AttributeDef("x", AttrKind.INT32)])
    db = Database(schema)
    db.create_file("things")
    return db


# ------------------------------------------------------------- WAL

class TestWriteAheadLog:
    def make(self):
        clock = SimClock()
        return clock, WriteAheadLog(clock, CostParams())

    def test_append_charges_cpu(self):
        clock, log = self.make()
        log.append(1, "create", 64)
        assert clock.bucket_s(Bucket.LOG) > 0
        assert log.pending_bytes == 64

    def test_flush_charges_page_writes(self):
        clock, log = self.make()
        for __ in range(100):
            log.append(1, "create", 64)
        before = clock.bucket_s(Bucket.LOG)
        pages = log.flush()
        assert pages == 2  # 6400 bytes -> 2 pages
        assert clock.bucket_s(Bucket.LOG) - before == pytest.approx(
            2 * CostParams().page_write_ms / 1000
        )
        assert log.pending_bytes == 0

    def test_flush_empty_is_free(self):
        """A zero-pending flush must not charge any simulated I/O."""
        clock, log = self.make()
        before = clock.elapsed_s
        assert log.flush() == 0
        assert clock.elapsed_s == before
        assert log.flushed_pages == 0
        # Still free the second time (idempotent no-op).
        assert log.flush() == 0
        assert clock.elapsed_s == before

    def test_flush_then_empty_flush_charges_nothing_more(self):
        clock, log = self.make()
        log.append(1, "create", 64)
        log.flush()
        after_first = clock.elapsed_s
        assert log.flush() == 0
        assert clock.elapsed_s == after_first

    def test_negative_payload_rejected(self):
        __, log = self.make()
        with pytest.raises(ValueError):
            log.append(1, "create", -1)

    def test_pending_bytes_consistent_after_abort(self):
        """After an abort the pending counter must equal exactly the
        bytes of the still-unflushed records (the create + the abort
        marker), and the next commit's flush must drain it to zero."""
        db = make_db()
        txm = TransactionManager(db)
        txn = txm.begin()
        txn.create_object("Thing", {"x": 1}, "things")
        create_bytes = txm.log.pending_bytes
        assert create_bytes > 0
        txn.abort()
        abort_bytes = txm.log.records[-1].nbytes
        assert txm.log.records[-1].kind == "abort"
        assert txm.log.pending_bytes == create_bytes + abort_bytes
        # The next committed transaction flushes the whole backlog.
        txn2 = txm.begin()
        txn2.create_object("Thing", {"x": 2}, "things")
        txn2.commit()
        assert txm.log.pending_bytes == 0
        assert txm.log.flush() == 0  # nothing left to write


# ------------------------------------------------------------- locks

class TestLockManager:
    def make(self):
        return LockManager(SimClock(), CostParams())

    def test_shared_locks_compatible(self):
        locks = self.make()
        rid = Rid(0, 0, 0)
        locks.acquire(1, rid, LockMode.SHARED)
        locks.acquire(2, rid, LockMode.SHARED)
        assert locks.held(rid)[1] == {1, 2}

    def test_exclusive_conflicts(self):
        locks = self.make()
        rid = Rid(0, 0, 0)
        locks.acquire(1, rid, LockMode.EXCLUSIVE)
        with pytest.raises(LockConflictError):
            locks.acquire(2, rid, LockMode.SHARED)
        with pytest.raises(LockConflictError):
            locks.acquire(2, rid, LockMode.EXCLUSIVE)

    def test_sole_holder_upgrade(self):
        locks = self.make()
        rid = Rid(0, 0, 0)
        locks.acquire(1, rid, LockMode.SHARED)
        locks.acquire(1, rid, LockMode.EXCLUSIVE)
        assert locks.held(rid)[0] is LockMode.EXCLUSIVE

    def test_shared_upgrade_blocked_by_other_reader(self):
        locks = self.make()
        rid = Rid(0, 0, 0)
        locks.acquire(1, rid, LockMode.SHARED)
        locks.acquire(2, rid, LockMode.SHARED)
        with pytest.raises(LockConflictError):
            locks.acquire(1, rid, LockMode.EXCLUSIVE)

    def test_release_all(self):
        locks = self.make()
        locks.acquire(1, Rid(0, 0, 0), LockMode.EXCLUSIVE)
        locks.acquire(1, Rid(0, 0, 1), LockMode.SHARED)
        locks.acquire(2, Rid(0, 0, 1), LockMode.SHARED)
        assert locks.release_all(1) == 2
        assert locks.lock_count == 1  # txn 2 still holds one

    def test_fail_fast_without_scheduler_keeps_queue_empty(self):
        locks = self.make()
        rid = Rid(0, 0, 0)
        locks.acquire(1, rid, LockMode.EXCLUSIVE)
        with pytest.raises(LockConflictError):
            locks.acquire(2, rid, LockMode.SHARED)
        assert locks.waiting_count == 0
        assert locks.waiters(rid) == []

    def test_wait_mode_grants_after_release(self):
        """With a waiter attached, a conflicting request queues; when the
        holder releases, the queued request is granted and woken."""
        locks = self.make()
        rid = Rid(0, 0, 0)
        locks.acquire(1, rid, LockMode.EXCLUSIVE)
        woken = []

        def wait(txn_id, waited_rid):
            assert locks.waiters(waited_rid) == [(2, LockMode.EXCLUSIVE)]
            assert locks.waits_for() == {2: {1}}
            locks.release_all(1)  # grants + wakes the queued request

        locks.attach(wait, woken.append)
        locks.acquire(2, rid, LockMode.EXCLUSIVE)
        assert woken == [2]
        assert locks.held(rid) == (LockMode.EXCLUSIVE, {2})
        assert locks.waiting_count == 0

    def test_wait_mode_cancels_request_when_wait_raises(self):
        locks = self.make()
        rid = Rid(0, 0, 0)
        locks.acquire(1, rid, LockMode.EXCLUSIVE)

        def wait(txn_id, waited_rid):
            locks.cancel_wait(txn_id)
            raise LockConflictError("victim")

        locks.attach(wait, lambda txn_id: None)
        with pytest.raises(LockConflictError):
            locks.acquire(2, rid, LockMode.EXCLUSIVE)
        assert locks.waiting_count == 0
        assert locks.held(rid) == (LockMode.EXCLUSIVE, {1})

    def test_detach_restores_fail_fast(self):
        locks = self.make()
        rid = Rid(0, 0, 0)
        locks.attach(lambda t, r: locks.release_all(1), lambda t: None)
        locks.detach()
        locks.acquire(1, rid, LockMode.EXCLUSIVE)
        with pytest.raises(LockConflictError):
            locks.acquire(2, rid, LockMode.EXCLUSIVE)


# ------------------------------------------------------------- transactions

class TestTransaction:
    def test_create_within_budget(self):
        db = make_db()
        txm = TransactionManager(db, object_budget=5)
        with txm.begin() as txn:
            for i in range(5):
                txn.create_object("Thing", {"x": i}, "things")
        assert db.file("things").record_count == 5

    def test_budget_overflow_raises_out_of_memory(self):
        db = make_db()
        txm = TransactionManager(db, object_budget=3)
        txn = txm.begin()
        for i in range(3):
            txn.create_object("Thing", {"x": i}, "things")
        with pytest.raises(TransactionMemoryError):
            txn.create_object("Thing", {"x": 99}, "things")
        txn.abort()

    def test_budget_applies_even_without_logging(self):
        db = make_db()
        txm = TransactionManager(db, object_budget=2)
        txn = txm.begin(logged=False)
        txn.create_object("Thing", {"x": 0}, "things")
        txn.create_object("Thing", {"x": 1}, "things")
        with pytest.raises(TransactionMemoryError):
            txn.create_object("Thing", {"x": 2}, "things")
        txn.abort()

    def test_commit_flushes_log_and_releases_locks(self):
        db = make_db()
        txm = TransactionManager(db)
        txn = txm.begin()
        txn.create_object("Thing", {"x": 1}, "things")
        assert txm.locks.lock_count == 1
        txn.commit()
        assert txm.locks.lock_count == 0
        assert txm.log.flushed_pages >= 1
        assert txn.state == "committed"

    def test_transaction_off_mode_skips_log_and_locks(self):
        db = make_db()
        txm = TransactionManager(db)
        txn = txm.begin(logged=False)
        txn.create_object("Thing", {"x": 1}, "things")
        assert txm.locks.lock_count == 0
        assert txm.log.pending_bytes == 0
        txn.commit()
        assert txm.log.flushed_pages == 0

    def test_transaction_off_loads_cheaper(self):
        def load_cost(logged: bool) -> float:
            db = make_db()
            txm = TransactionManager(db, object_budget=10_000)
            with txm.begin(logged=logged) as txn:
                for i in range(2000):
                    txn.create_object("Thing", {"x": i}, "things")
            return db.clock.elapsed_s

        assert load_cost(False) < load_cost(True)

    def test_context_manager_aborts_on_exception(self):
        db = make_db()
        txm = TransactionManager(db)
        with pytest.raises(RuntimeError):
            with txm.begin() as txn:
                txn.create_object("Thing", {"x": 1}, "things")
                raise RuntimeError("boom")
        assert txn.state == "aborted"
        assert txm.locks.lock_count == 0

    def test_finished_transaction_rejects_operations(self):
        db = make_db()
        txm = TransactionManager(db)
        txn = txm.begin()
        txn.commit()
        with pytest.raises(TransactionStateError):
            txn.create_object("Thing", {"x": 1}, "things")
        with pytest.raises(TransactionStateError):
            txn.commit()

    def test_active_bookkeeping(self):
        db = make_db()
        txm = TransactionManager(db)
        t1, t2 = txm.begin(), txm.begin()
        assert txm.active_count == 2
        t1.commit()
        t2.abort()
        assert txm.active_count == 0
        assert txm.committed == 1
        assert txm.aborted == 1

    def test_lock_helpers(self):
        db = make_db()
        txm = TransactionManager(db)
        txn = txm.begin()
        rid = Rid(0, 0, 0)
        txn.read_lock(rid)
        assert txm.locks.held(rid)[0] is LockMode.SHARED
        txn.write_lock(rid)
        assert txm.locks.held(rid)[0] is LockMode.EXCLUSIVE
        txn.commit()

    def test_bad_budget_rejected(self):
        with pytest.raises(ValueError):
            TransactionManager(make_db(), object_budget=0)
