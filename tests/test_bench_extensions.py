"""Tests for the bench extensions: warm runs, cost breakdowns, the
remote-workstation configuration."""

from __future__ import annotations

import pytest

from repro.bench import ExperimentRunner
from repro.bench.figures import join_cost_breakdown, warm_vs_cold_figure
from repro.cluster import load_derby
from repro.derby import DerbyConfig
from repro.derby.config import Clustering
from repro.simtime import Bucket, CostParams


@pytest.fixture(scope="module")
def derby():
    cfg = DerbyConfig(
        n_providers=30,
        n_patients=900,
        clustering=Clustering.CLASS,
        scale=0.002,
        params=CostParams().scaled(0.002),
    )
    return load_derby(cfg)


@pytest.fixture()
def runner(derby):
    return ExperimentRunner(derby)


class TestWarmRuns:
    def test_warm_is_much_faster(self, runner):
        cold = runner.run_join("NOJOIN", 10, 90, cold=True)
        warm = runner.run_join("NOJOIN", 10, 90, cold=False)
        # On this tiny database result construction dominates; the warm
        # run still drops all I/O and most handle allocation.
        assert warm.elapsed_s < 0.7 * cold.elapsed_s
        assert warm.meters.disk_reads == 0  # everything cached

    def test_warm_still_pays_cpu_and_results(self, runner):
        runner.run_join("PHJ", 10, 10, cold=True)
        warm = runner.run_join("PHJ", 10, 10, cold=False)
        assert warm.elapsed_s > 0
        assert warm.breakdown.get("result", 0) > 0

    def test_warm_reuses_parked_handles(self, runner):
        runner.run_join("NOJOIN", 10, 10, cold=True)
        warm = runner.run_join("NOJOIN", 10, 10, cold=False)
        # Far fewer fresh allocations than the cold run's object count.
        assert warm.meters.handles_allocated < warm.meters.handles_unreferenced

    def test_warm_vs_cold_figure(self, runner):
        table = warm_vs_cold_figure(runner)
        assert len(table.rows) == 4
        for row in table.rows:
            assert row[1] > row[2]   # cold slower than warm
            assert row[3] > 1.0


class TestJoinBreakdown:
    def test_components_sum_to_total(self, runner):
        table = join_cost_breakdown(runner, 10, 90)
        for row in table.rows:
            assert sum(row[1:-1]) == pytest.approx(row[-1], rel=0.01)

    def test_nl_breakdown_is_io_heavy(self, runner):
        table = join_cost_breakdown(runner, 90, 90)
        by_algo = {row[0]: row for row in table.rows}
        headers = table.headers
        io_col = headers.index("io")
        nl = by_algo["NL"]
        assert nl[io_col] > 0.3 * nl[-1]


class TestRemoteWorkstation:
    def test_remote_params(self):
        local = CostParams()
        remote = local.remote_workstation()
        assert remote.rpc_overhead_ms == 10 * local.rpc_overhead_ms
        assert remote.page_transfer_ms == 10 * local.page_transfer_ms
        assert remote.page_read_ms == local.page_read_ms

    def test_remote_queries_slower_same_winner(self):
        def best(params: CostParams):
            cfg = DerbyConfig(
                n_providers=30,
                n_patients=900,
                clustering=Clustering.CLASS,
                scale=0.002,
                params=params,
            )
            runner = ExperimentRunner(load_derby(cfg))
            times = {
                algo: runner.run_join(algo, 10, 10).elapsed_s
                for algo in ("NL", "NOJOIN", "PHJ")
            }
            return times

        local = best(CostParams().scaled(0.002))
        remote = best(CostParams().scaled(0.002).remote_workstation())
        assert min(remote, key=remote.get) == min(local, key=local.get)
        for algo in local:
            assert remote[algo] > local[algo]
