"""Tests for the ``explain`` and ``analyze`` OQL statements.

Statements are first-class: they parse through ``parse_statement``,
unparse through ``print_statement``, execute through the ordinary
engine/cursor machinery, and run governed inside the multi-client
service.
"""

from __future__ import annotations

import pytest

from repro.cluster import load_derby
from repro.derby import DerbyConfig
from repro.derby.config import Clustering
from repro.errors import OQLSyntaxError, PlanError, ServiceError
from repro.oql import (
    AnalyzeStmt,
    Catalog,
    ExplainStmt,
    OQLEngine,
    Query,
    parse_statement,
    print_statement,
)
from repro.service import QueryService
from repro.simtime import CostParams


@pytest.fixture(scope="module")
def derby():
    config = DerbyConfig(
        n_providers=40,
        n_patients=1200,
        clustering=Clustering.CLASS,
        scale=0.002,
        params=CostParams().scaled(0.002),
    )
    return load_derby(config)


@pytest.fixture(scope="module")
def catalog(derby):
    return Catalog.from_derby(derby)


@pytest.fixture()
def engine(catalog):
    return OQLEngine(catalog)


SELECTION = "select p.age from p in Patients where p.num > 600"
TREE = (
    "select tuple(n: p.name, a: pa.age) "
    "from p in Providers, pa in p.clients "
    "where pa.mrn < 100000 and p.upin < 20"
)


class TestParsing:
    def test_plain_query_is_query(self):
        assert isinstance(parse_statement(SELECTION), Query)

    def test_explain(self):
        stmt = parse_statement(f"explain {SELECTION}")
        assert isinstance(stmt, ExplainStmt)
        assert isinstance(stmt.query, Query)

    def test_explain_case_insensitive(self):
        assert isinstance(parse_statement(f"EXPLAIN {SELECTION}"),
                          ExplainStmt)

    def test_analyze_bare(self):
        stmt = parse_statement("analyze")
        assert stmt == AnalyzeStmt(())

    def test_analyze_named(self):
        stmt = parse_statement("analyze Patients, Providers")
        assert stmt == AnalyzeStmt(("Patients", "Providers"))

    def test_analyze_trailing_garbage(self):
        with pytest.raises(OQLSyntaxError):
            parse_statement("analyze Patients bogus")

    def test_explain_requires_query(self):
        with pytest.raises(OQLSyntaxError):
            parse_statement("explain")

    def test_print_round_trip(self):
        for text in (f"explain {SELECTION}", "analyze",
                     "analyze Patients, Providers", SELECTION):
            stmt = parse_statement(text)
            printed = print_statement(stmt)
            assert parse_statement(printed) == stmt


class TestExplainExecution:
    def test_selection_report(self, engine):
        rows = engine.execute(f"explain {SELECTION}")
        assert all(isinstance(row, str) for row in rows)
        text = "\n".join(rows)
        assert rows[0].startswith("query:")
        assert "plan:" in text
        assert "rows: estimated" in text
        assert "cost: estimated" in text
        assert "alternatives:" in text
        assert "<- chosen" in text

    def test_tree_report_names_operator(self, engine):
        text = "\n".join(engine.execute(f"explain {TREE}"))
        assert "TreeJoin[" in text

    def test_actual_rows_reported(self, engine):
        n = len(engine.execute(SELECTION))
        text = "\n".join(engine.execute(f"explain {SELECTION}"))
        assert f"actual {n}" in text

    def test_charges_simulated_time(self, derby, engine):
        before = derby.db.clock.elapsed_s
        engine.execute(f"explain {SELECTION}")
        assert derby.db.clock.elapsed_s > before


class TestAnalyzeExecution:
    def test_installs_stats_on_heuristic_engine(self, engine):
        assert engine.table_stats is None
        rows = engine.execute("analyze")
        assert engine.table_stats
        assert engine.table_stats.extent("Patients") is not None
        assert any("analyzed Patients" in row for row in rows)

    def test_installs_into_cost_planner(self, catalog):
        from repro.opt import CostBasedOptimizer

        optimizer = CostBasedOptimizer(catalog)
        engine = OQLEngine(catalog, optimizer=optimizer)
        engine.execute("analyze Patients")
        assert optimizer.table_stats.extent("Patients") is not None
        assert optimizer.table_stats.extent("Providers") is None

    def test_unknown_collection(self, engine):
        with pytest.raises(PlanError):
            engine.execute("analyze Bogus")


class TestGovernedStatements:
    def test_service_cost_optimizer(self, derby):
        service = QueryService(derby, optimizer="cost")
        session = service.open_session("s")
        with service.immediate(session):
            session.execute("analyze")
        assert service.plan_optimizer.table_stats
        with service.immediate(session):
            rows = session.execute(f"explain {SELECTION}")
        assert any("<- chosen" in row for row in rows)

    def test_sessions_share_planner(self, derby):
        service = QueryService(derby, optimizer="cost")
        one = service.open_session("one")
        two = service.open_session("two")
        with service.immediate(one):
            one.execute("analyze")
        assert two.engine.optimizer is service.plan_optimizer
        assert two.engine.optimizer.table_stats

    def test_invalid_optimizer_rejected(self, derby):
        with pytest.raises(ServiceError):
            QueryService(derby, optimizer="bogus")
