"""Unit tests for the Derby workload: lrand48, schema, generator, config."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.derby import DerbyConfig, Lrand48, build_derby_schema, generate
from repro.derby.config import Clustering
from repro.objects.codec import RecordCodec
from repro.objects.header import ObjectHeader


class TestLrand48:
    def test_known_sequence_seed_zero(self):
        """First values of lrand48 after srand48(0), verified against
        glibc (gcc-compiled reference run)."""
        rng = Lrand48(0)
        assert [rng.lrand48() for __ in range(5)] == [
            366850414,
            1610402240,
            206956554,
            1869309841,
            1239749840,
        ]

    def test_known_sequence_seed_one(self):
        rng = Lrand48(1)
        first = rng.lrand48()
        assert 0 <= first < 2**31
        rng2 = Lrand48(1)
        assert rng2.lrand48() == first

    def test_reseeding_restarts_stream(self):
        rng = Lrand48(7)
        a = [rng.lrand48() for __ in range(3)]
        rng.srand48(7)
        assert [rng.lrand48() for __ in range(3)] == a

    def test_randint_1_to_bounds(self):
        rng = Lrand48(3)
        draws = [rng.randint_1_to(10) for __ in range(1000)]
        assert min(draws) == 1
        assert max(draws) == 10

    def test_randrange_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            Lrand48(0).randrange(0)

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=50)
    def test_property_output_range(self, seed):
        rng = Lrand48(seed)
        for __ in range(10):
            assert 0 <= rng.lrand48() < 2**31


class TestDerbySchema:
    def test_classes_and_attributes(self):
        schema = build_derby_schema()
        provider = schema.cls("Provider")
        patient = schema.cls("Patient")
        assert provider.attribute("clients").is_variable
        assert patient.attribute("primary_care_provider").target == "Provider"
        assert patient.attribute("sex").fixed_size == 1

    def test_object_sizes_match_paper(self):
        """Paper §2: providers ~120 bytes, patients ~60 bytes."""
        schema = build_derby_schema()
        provider_codec = RecordCodec(schema.cls("Provider"))
        patient_codec = RecordCodec(schema.cls("Patient"))
        header = ObjectHeader.for_new_object(1, in_indexed_collection=True)
        provider = provider_codec.encode(
            header, {"name": "x", "upin": 1, "clients": [(0, 0, 0)] and None}
        )
        patient = patient_codec.encode(header, {"name": "y", "mrn": 1})
        assert 90 <= len(provider) + 3 * 8 <= 130   # with 3 inline clients
        assert 50 <= len(patient) <= 70


class TestDerbyConfig:
    def test_paper_databases_at_scale(self):
        cfg = DerbyConfig.db_1to1000(scale=0.01)
        assert cfg.n_providers == 20
        assert cfg.n_patients == 20_000
        cfg = DerbyConfig.db_1to3(scale=0.01)
        assert cfg.n_providers == 10_000
        assert cfg.n_patients == 30_000

    def test_memory_scales_with_database(self):
        cfg = DerbyConfig.db_1to3(scale=0.01)
        assert cfg.params.memory.client_cache_pages == pytest.approx(82, abs=3)

    def test_thresholds(self):
        cfg = DerbyConfig.db_1to1000(scale=0.01)
        assert cfg.mrn_threshold(10) == 2001
        assert cfg.upin_threshold(50) == 11
        assert cfg.num_threshold(10) == 17999

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            DerbyConfig(n_providers=0, n_patients=5)

    def test_avg_children(self):
        assert DerbyConfig.db_1to3(scale=0.01).avg_children == pytest.approx(3.0)


class TestGenerator:
    def test_deterministic(self):
        cfg = DerbyConfig(n_providers=10, n_patients=30, scale=1.0)
        a, b = generate(cfg), generate(cfg)
        assert [p.random_integer for p in a.patients] == [
            p.random_integer for p in b.patients
        ]

    def test_ranks_are_creation_order(self):
        cfg = DerbyConfig(n_providers=5, n_patients=20, scale=1.0)
        logical = generate(cfg)
        assert [p.upin for p in logical.providers] == [1, 2, 3, 4, 5]
        assert [p.mrn for p in logical.patients] == list(range(1, 21))

    def test_assignment_consistency(self):
        cfg = DerbyConfig(n_providers=7, n_patients=50, scale=1.0)
        logical = generate(cfg)
        for i, provider in enumerate(logical.providers):
            for j in provider.patient_idxs:
                assert logical.patients[j].provider_idx == i
        total = sum(len(p.patient_idxs) for p in logical.providers)
        assert total == 50

    def test_random_integer_in_provider_range(self):
        cfg = DerbyConfig(n_providers=9, n_patients=200, scale=1.0)
        logical = generate(cfg)
        assert all(1 <= p.random_integer <= 9 for p in logical.patients)

    def test_num_in_patient_range(self):
        cfg = DerbyConfig(n_providers=3, n_patients=100, scale=1.0)
        logical = generate(cfg)
        assert all(0 <= p.num < 100 for p in logical.patients)

    def test_average_children_close_to_ratio(self):
        cfg = DerbyConfig(n_providers=50, n_patients=5000, scale=1.0)
        logical = generate(cfg)
        sizes = [len(p.patient_idxs) for p in logical.providers]
        assert sum(sizes) / len(sizes) == pytest.approx(100.0)
        # lrand48 is uniform: no provider should be wildly off.
        assert min(sizes) > 50
        assert max(sizes) < 160
