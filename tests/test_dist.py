"""Tests for the sharding subsystem: partitioning, the distributed
coordinator, cross-shard deadlocks and two-phase commit."""

from __future__ import annotations

import pytest

from repro.cluster import load_derby
from repro.derby import DerbyConfig
from repro.derby.generator import generate
from repro.dist import (
    TWOPC_CRASH_POINTS,
    Coordinator,
    ShardedMixConfig,
    ShardedWorkload,
    TwoPCInjector,
    hash_shard,
    load_sharded,
    range_shard,
    run_2pc_case,
    split_logical,
)
from repro.errors import (
    DeadlockError,
    DistPlanError,
    RecoveryError,
    SimulatedCrashError,
    TwoPCError,
)
from repro.oql import Catalog, OQLEngine
from repro.recovery import TransientFaultInjector
from repro.service import CooperativeScheduler

TINY = 0.00001   # 10 providers / 30 patients
SMALL = 0.0002   # 200 providers / 600 patients


@pytest.fixture(scope="module")
def small_logical():
    return generate(DerbyConfig.db_1to3(scale=SMALL))


@pytest.fixture(scope="module")
def small_single(small_logical):
    derby = load_derby(small_logical.config, logical=small_logical)
    return derby, OQLEngine(Catalog.from_derby(derby))


def make_cluster(n_shards, scale=TINY, scheme="hash", **kwargs):
    return load_sharded(
        DerbyConfig.db_1to3(scale=scale), n_shards, scheme=scheme, **kwargs
    )


# -- partitioning --------------------------------------------------------


def test_hash_shard_is_deterministic_and_in_range():
    for upin in range(1, 200):
        shard = hash_shard(upin, 4)
        assert shard == hash_shard(upin, 4)
        assert 0 <= shard < 4


def test_range_shard_covers_all_shards_in_order():
    shards = [range_shard(upin, 100, 4) for upin in range(1, 101)]
    assert shards == sorted(shards)
    assert set(shards) == {0, 1, 2, 3}


@pytest.mark.parametrize("scheme", ["hash", "range"])
def test_split_assigns_every_object_once(scheme):
    logical = generate(DerbyConfig.db_1to3(scale=TINY))
    part, views = split_logical(logical, 3, scheme)
    sizes = part.shard_sizes()
    assert sum(p for p, __ in sizes) == len(logical.providers)
    assert sum(q for __, q in sizes) == len(logical.patients)
    for shard_id, view in enumerate(views):
        assert len(view.providers) == sizes[shard_id][0]
        assert len(view.patients) == sizes[shard_id][1]


def test_patients_are_colocated_with_their_provider():
    logical = generate(DerbyConfig.db_1to3(scale=TINY))
    part, __ = split_logical(logical, 4, "hash")
    for idx, patient in enumerate(logical.patients):
        provider_idx = patient.random_integer - 1
        assert part.patient_shard[idx] == part.provider_shard[provider_idx]


def test_one_shard_split_reproduces_original_placement():
    logical = generate(DerbyConfig.db_1to3(scale=TINY))
    part, views = split_logical(logical, 1, "hash")
    assert part.shard_sizes() == [(len(logical.providers),
                                   len(logical.patients))]
    view = views[0]
    assert [p.upin for p in view.providers] == [
        p.upin for p in logical.providers
    ]
    assert [q.mrn for q in view.patients] == [q.mrn for q in logical.patients]


def test_split_rejects_bad_scheme_and_shard_count():
    from repro.errors import PartitionError

    logical = generate(DerbyConfig.db_1to3(scale=TINY))
    with pytest.raises(PartitionError):
        split_logical(logical, 0, "hash")
    with pytest.raises(PartitionError):
        split_logical(logical, 2, "round-robin")


# -- distributed queries -------------------------------------------------

EQUIVALENCE_QUERIES = [
    "select p.age from p in Patients",
    "select p.age from p in Patients where p.num > {thr}",
    "select tuple(a: p.age, n: p.num) from p in Patients where p.num > {thr}",
    "select distinct p.age from p in Patients where p.num > {thr}",
    "select p.age from p in Patients where p.num > {thr} "
    "order by p.age desc limit 10",
    "select tuple(a: p.age, m: p.mrn) from p in Patients "
    "where p.num > {thr} order by p.mrn limit 7",
    "select count(*) from p in Patients",
    "select count(*) from p in Patients where p.num > {thr}",
    "select sum(p.age) from p in Patients where p.num <= {thr}",
    "select avg(p.age) from p in Patients where p.num > {thr}",
    "select min(p.mrn) from p in Patients where p.num > {thr}",
    "select max(p.age) from p in Patients",
    "select tuple(u: d.upin, a: p.age) from d in Providers, p in d.clients "
    "where d.upin < {pthr} and p.num < {thr}",
]


@pytest.mark.parametrize("n_shards", [1, 3])
def test_distributed_answers_match_single_node(
    small_logical, small_single, n_shards
):
    derby, engine = small_single
    config = small_logical.config
    cluster = load_sharded(config, n_shards, logical=small_logical)
    coordinator = Coordinator(cluster)
    thr = config.num_threshold(30.0)
    pthr = config.upin_threshold(50.0)
    for template in EQUIVALENCE_QUERIES:
        query = template.format(thr=thr, pthr=pthr)
        base = engine.execute(query)
        rows = coordinator.execute(query)
        if "order by" in query:
            assert rows == base, query
        else:
            assert sorted(rows, key=repr) == sorted(base, key=repr), query


def test_data_ship_matches_query_ship(small_logical):
    config = small_logical.config
    cluster = load_sharded(config, 3, logical=small_logical)
    coordinator = Coordinator(cluster)
    thr = config.num_threshold(25.0)
    query = f"select p.age from p in Patients where p.num > {thr}"
    by_query = coordinator.execute(query, strategy="query")
    assert coordinator.last_plan.strategy == "query"
    by_data = coordinator.execute(query, strategy="data")
    assert coordinator.last_plan.strategy == "data"
    assert sorted(by_query) == sorted(by_data)
    # Query shipping moves only matching rows; data shipping moves the
    # referenced columns of *every* row.  The estimates must agree.
    plan = coordinator.last_plan
    assert plan.est_data_ship_bytes > plan.est_query_ship_bytes


def test_auto_strategy_prefers_query_shipping(small_logical):
    cluster = load_sharded(small_logical.config, 2, logical=small_logical)
    coordinator = Coordinator(cluster)
    coordinator.execute("select p.age from p in Patients", strategy="auto")
    assert coordinator.last_plan.strategy == "query"


def test_data_ship_rejects_joins(small_logical):
    cluster = load_sharded(small_logical.config, 2, logical=small_logical)
    coordinator = Coordinator(cluster)
    with pytest.raises(DistPlanError):
        coordinator.plan(
            "select p.age from d in Providers, p in d.clients",
            strategy="data",
        )


def test_exchange_scales_elapsed_below_single_shard(small_logical):
    config = small_logical.config
    thr = config.num_threshold(50.0)
    query = f"select p.age from p in Patients where p.num > {thr}"
    elapsed = {}
    for n_shards in (1, 4):
        cluster = load_sharded(config, n_shards, logical=small_logical)
        cluster.start_cold()
        rows = Coordinator(cluster).execute(query)
        elapsed[n_shards] = cluster.elapsed_s
        assert len(rows) > 0
    # Virtual parallelism: four shards scanning a quarter each must beat
    # one shard scanning everything.
    assert elapsed[4] < elapsed[1]


def test_execute_iter_streams_batches(small_logical):
    config = small_logical.config
    cluster = load_sharded(config, 2, logical=small_logical)
    coordinator = Coordinator(cluster)
    pulls = []
    cursor = coordinator.execute_iter(
        "select p.age from p in Patients",
        on_batch=lambda: pulls.append(1),
        batch_size=64,
    )
    rows = []
    for batch in cursor.batches():
        rows.extend(batch)
    assert len(rows) == len(small_logical.patients)
    assert len(pulls) > 2  # one per shard pull, not one per drain


def test_execute_iter_rejects_aggregates(small_logical):
    cluster = load_sharded(small_logical.config, 2, logical=small_logical)
    coordinator = Coordinator(cluster)
    with pytest.raises(DistPlanError):
        coordinator.execute_iter("select count(*) from p in Patients")


# -- cross-shard deadlocks -----------------------------------------------


def _patient_on(cluster, shard_id, slot=0):
    node = cluster.nodes[shard_id]
    return node.derby.patient_rids[slot]


def _ring_deadlock(n_shards):
    """Run an n-transaction lock ring spanning n shards; returns
    (victim global ids, per-shard local victims, elapsed_s)."""
    cluster = make_cluster(n_shards)
    rids = [(sid, _patient_on(cluster, sid)) for sid in range(n_shards)]
    scheduler = CooperativeScheduler(cluster.clock, cluster.lock_table)
    dtxs = [cluster.begin() for __ in range(n_shards)]
    victims = []
    local_victims = []

    def body(i):
        def run():
            dtx = dtxs[i]
            first = rids[i]
            second = rids[(i + 1) % n_shards]
            try:
                dtx.branch(first[0]).write_lock(first[1])
                scheduler.yield_point()
                # Before blocking, no single shard sees a local cycle.
                local_victims.append(
                    cluster.nodes[second[0]].locks.find_deadlock_victim()
                )
                dtx.branch(second[0]).write_lock(second[1])
                dtx.commit()
                return "committed"
            except DeadlockError:
                victims.append(dtx.global_id)
                dtx.abort()
                return "victim"
        return run

    for i in range(n_shards):
        scheduler.spawn(f"t{i}", body(i))
    tasks = scheduler.run()
    for task in tasks:
        if task.error is not None:
            raise task.error
    assert cluster.lock_table.lock_count == 0
    assert cluster.lock_table.waiting_count == 0
    assert cluster.active_count == 0
    return victims, local_victims, cluster.elapsed_s


@pytest.mark.parametrize("n_shards", [2, 3])
def test_cross_shard_deadlock_aborts_youngest(n_shards):
    victims, local_victims, __ = _ring_deadlock(n_shards)
    # Breaking an n-cycle needs exactly one victim: the youngest
    # (highest global id) distributed transaction.
    assert victims == [n_shards]
    # No shard-local detector could have seen the cycle.
    assert all(v is None for v in local_victims)


def test_deadlock_resolution_is_deterministic():
    first = _ring_deadlock(3)
    second = _ring_deadlock(3)
    assert first == second


# -- two-phase commit ----------------------------------------------------


def _cluster_with_write_targets():
    """A 2-shard cluster plus one patient rid per shard and preloads."""
    cluster = make_cluster(2)
    targets = [(sid, _patient_on(cluster, sid)) for sid in (0, 1)]
    preload = {
        (sid, rid): int(cluster.nodes[sid].db.manager.get_attr_at(rid, "age"))
        for sid, rid in targets
    }
    return cluster, targets, preload


def _ages(cluster, targets):
    return {
        (sid, rid): int(cluster.nodes[sid].db.manager.get_attr_at(rid, "age"))
        for sid, rid in targets
    }


def test_two_phase_commit_commits_on_every_shard():
    cluster, targets, preload = _cluster_with_write_targets()
    dtx = cluster.begin()
    for sid, rid in targets:
        dtx.update_scalar(sid, rid, "age", 111)
    dtx.commit()
    assert dtx.state == "committed"
    assert all(v == 111 for v in _ages(cluster, targets).values())
    # Multi-participant: the decision record is durable and names both
    # branches.
    assert len(cluster.decided_branches()) == 2
    assert cluster.committed == 1


def test_single_participant_uses_one_phase_commit():
    cluster, targets, __ = _cluster_with_write_targets()
    sid, rid = targets[0]
    dtx = cluster.begin()
    dtx.update_scalar(sid, rid, "age", 42)
    dtx.commit()
    # One-phase: no decision record, no prepare on the shard log.
    assert cluster.decided_branches() == set()
    kinds = [r.kind for r in cluster.nodes[sid].txm.log.durable_records()]
    assert "prepare" not in kinds
    assert _ages(cluster, targets[:1]) == {(sid, rid): 42}


def test_abort_rolls_back_every_branch():
    cluster, targets, preload = _cluster_with_write_targets()
    dtx = cluster.begin()
    for sid, rid in targets:
        dtx.update_scalar(sid, rid, "age", 99)
    dtx.abort()
    assert dtx.state == "aborted"
    assert _ages(cluster, targets) == preload
    with pytest.raises(TwoPCError):
        dtx.commit()


def test_context_manager_commits_and_aborts():
    cluster, targets, preload = _cluster_with_write_targets()
    sid, rid = targets[0]
    with cluster.begin() as dtx:
        dtx.update_scalar(sid, rid, "age", 77)
    assert _ages(cluster, targets[:1]) == {(sid, rid): 77}
    with pytest.raises(RuntimeError):
        with cluster.begin() as dtx:
            dtx.update_scalar(sid, rid, "age", 78)
            raise RuntimeError("client bug")
    assert _ages(cluster, targets[:1]) == {(sid, rid): 77}


#: Crash point -> do the writes survive recovery?
_POINT_SURVIVES = {
    "2pc-before-prepare": False,
    "2pc-mid-prepare": False,
    "2pc-before-decision": False,
    "2pc-after-decision": True,
    "2pc-mid-commit": True,
}


@pytest.mark.parametrize("point", TWOPC_CRASH_POINTS)
def test_crash_recovery_at_every_protocol_point(point):
    cluster, targets, preload = _cluster_with_write_targets()
    injector = TwoPCInjector(point)
    injector.arm(cluster)
    dtx = cluster.begin()
    for sid, rid in targets:
        dtx.update_scalar(sid, rid, "age", 123)
    with pytest.raises(SimulatedCrashError):
        dtx.commit()
    assert injector.fired
    # The cluster is down: durable mutation refuses service.
    with pytest.raises(SimulatedCrashError):
        cluster.nodes[0].txm.log.append(999, "update", 8)
    cluster.crash()
    reports = cluster.recover()
    survives = _POINT_SURVIVES[point]
    expected = (
        {key: 123 for key in preload} if survives else preload
    )
    assert _ages(cluster, targets) == expected
    if survives:
        assert sum(r.txns_resolved_commit for r in reports) >= 1
    for node in cluster.nodes:
        assert node.txm.active_count == 0


def test_injector_rejects_unknown_point():
    with pytest.raises(RecoveryError):
        TwoPCInjector("2pc-nonsense")
    with pytest.raises(RecoveryError):
        TwoPCInjector("2pc-mid-commit", occurrence=0)


def test_in_doubt_branches_follow_the_resolver():
    """A prepared branch is in doubt at restart; the resolver decides."""
    cluster, targets, preload = _cluster_with_write_targets()
    injector = TwoPCInjector("2pc-after-decision")
    injector.arm(cluster)
    dtx = cluster.begin()
    for sid, rid in targets:
        dtx.update_scalar(sid, rid, "age", 55)
    with pytest.raises(SimulatedCrashError):
        dtx.commit()
    cluster.crash()
    decided = cluster.decided_branches()
    assert len(decided) == 2  # both branches named by the decision record
    reports = cluster.recover()
    assert sum(r.txns_resolved_commit for r in reports) == 2
    assert [r.txns_in_doubt for r in reports] != [(), ()]
    assert all(v == 55 for v in _ages(cluster, targets).values())


# -- sharded workloads ---------------------------------------------------


def _mix_digest(report):
    return (
        tuple(
            (s.name, s.committed, s.aborted, s.retries, s.deadlocks)
            for s in report.sessions
        ),
        round(report.elapsed_s, 9),
        report.context_switches,
        report.msgs,
    )


def test_sharded_workload_runs_and_is_deterministic():
    config = ShardedMixConfig(
        scanners=1, updaters=2, ops_per_client=3, seed=5
    )
    digests = []
    for __ in range(2):
        cluster = make_cluster(3)
        report = ShardedWorkload(cluster, config).run()
        assert not report.crashed
        assert report.committed > 0
        assert cluster.lock_table.lock_count == 0
        assert cluster.active_count == 0
        digests.append(_mix_digest(report))
    assert digests[0] == digests[1]


def test_sharded_workload_acked_writes_are_visible():
    cluster = make_cluster(2)
    config = ShardedMixConfig(scanners=0, updaters=3, ops_per_client=3, seed=9)
    workload = ShardedWorkload(cluster, config)
    report = workload.run()
    assert report.committed > 0
    assert workload.write_log, "updaters committed but logged no writes"
    last = {}
    for home, value in workload.write_log:
        last[home] = value
    for (sid, rid), value in last.items():
        durable = int(cluster.nodes[sid].db.manager.get_attr_at(rid, "age"))
        assert durable == value


def test_for_node_fault_streams_are_independent():
    base = TransientFaultInjector(seed=3, read_fault_rate=0.5)
    child_a = base.for_node(0)
    child_b = base.for_node(1)
    again_a = base.for_node(0)
    draws_a = [child_a.read_fails(0, p, 0) for p in range(64)]
    draws_b = [child_b.read_fails(0, p, 0) for p in range(64)]
    draws_again = [again_a.read_fails(0, p, 0) for p in range(64)]
    assert draws_a == draws_again  # same (seed, node) -> same schedule
    assert draws_a != draws_b      # different nodes -> different schedule
    assert child_a.read_fault_rate == base.read_fault_rate


# -- 2PC chaos -----------------------------------------------------------


@pytest.mark.parametrize("seed", [0, 3, 8])
def test_2pc_chaos_cases_pass(seed):
    result = run_2pc_case(seed, check_determinism=True)
    assert result.ok, result.failures


# -- stats export --------------------------------------------------------


def test_sharding_to_csv_renders_per_shard_rows():
    from types import SimpleNamespace

    from repro.stats import sharding_to_csv

    rows = [
        SimpleNamespace(
            label="scan-10pct", n_shards=2, scheme="hash", shard=i,
            providers=5, patients=15, busy_s=0.25 * (i + 1),
            remote_wait_s=0.1, msgs=4, msg_bytes=4096,
            pages_read=12, pages_written=0, rows_shipped=30,
            lock_wait_s=0.0,
        )
        for i in range(2)
    ]
    text = sharding_to_csv(rows)
    lines = text.strip().splitlines()
    assert lines[0].startswith("label,n_shards,scheme,shard")
    assert len(lines) == 3
    assert "scan-10pct,2,hash,0" in lines[1]
