"""Tests for the OQL extensions: aggregates, index-only answering,
order by."""

from __future__ import annotations

import pytest

from repro.cluster import load_derby
from repro.derby import DerbyConfig, generate
from repro.derby.config import Clustering
from repro.errors import OQLSyntaxError, PlanError
from repro.oql import Catalog, OQLEngine, parse, run_oql
from repro.oql.ast_nodes import AggregateExpr, OrderBy, Path
from repro.simtime import CostParams


@pytest.fixture(scope="module")
def derby():
    cfg = DerbyConfig(
        n_providers=30,
        n_patients=900,
        clustering=Clustering.CLASS,
        scale=0.002,
        params=CostParams().scaled(0.002),
    )
    return load_derby(cfg)


@pytest.fixture(scope="module")
def catalog(derby):
    return Catalog.from_derby(derby)


@pytest.fixture(scope="module")
def logical(derby):
    return generate(derby.config)


class TestAggregateParsing:
    def test_count_star(self):
        q = parse("select count(*) from p in Patients")
        assert q.select == AggregateExpr("count", None)

    def test_count_var(self):
        q = parse("select count(p) from p in Patients")
        assert q.select == AggregateExpr("count", Path("p"))

    def test_sum_attr(self):
        q = parse("select sum(p.age) from p in Patients")
        assert q.select == AggregateExpr("sum", Path("p", ("age",)))

    def test_aggregate_needs_attribute(self):
        with pytest.raises(OQLSyntaxError):
            parse("select avg(p) from p in Patients")

    def test_order_by_parsing(self):
        q = parse("select p.age from p in Patients order by p.age desc")
        assert q.order_by == (OrderBy(Path("p", ("age",)), True),)

    def test_order_by_multiple_terms(self):
        q = parse(
            "select p.age from p in Patients "
            "order by p.age, p.mrn desc"
        )
        assert len(q.order_by) == 2
        assert not q.order_by[0].descending
        assert q.order_by[1].descending


class TestAggregateExecution:
    def test_count_matches_reference(self, derby, catalog, logical):
        derby.start_cold_run()
        k = derby.config.mrn_threshold(30)
        (n,) = run_oql(
            catalog, f"select count(p) from p in Patients where p.mrn < {k}"
        )
        assert n == sum(1 for p in logical.patients if p.mrn < k)

    def test_count_is_index_only(self, derby, catalog):
        """Counting over an indexed predicate must never fetch a data
        page — only index leaves."""
        engine = OQLEngine(catalog)
        k = derby.config.mrn_threshold(50)
        plan = engine.plan(
            f"select count(p) from p in Patients where p.mrn < {k}"
        )
        assert plan.index_only
        derby.start_cold_run()
        engine.execute(
            f"select count(p) from p in Patients where p.mrn < {k}"
        )
        reads = derby.db.counters.disk_reads
        # Only leaf pages of the mrn index (3 leaves here), no data pages.
        assert reads <= derby.by_mrn.leaf_count + 1
        assert derby.db.handles.live_count == 0
        assert derby.db.counters.handles_allocated == 0

    def test_min_max_over_index_key(self, derby, catalog, logical):
        derby.start_cold_run()
        (lo,) = run_oql(
            catalog, "select min(p.mrn) from p in Patients where p.mrn < 100"
        )
        (hi,) = run_oql(
            catalog, "select max(p.mrn) from p in Patients where p.mrn < 100"
        )
        assert lo == 1
        assert hi == 99

    def test_sum_avg_over_non_key_attribute(self, derby, catalog, logical):
        derby.start_cold_run()
        k = derby.config.mrn_threshold(20)
        (total,) = run_oql(
            catalog, f"select sum(p.age) from p in Patients where p.mrn < {k}"
        )
        (mean,) = run_oql(
            catalog, f"select avg(p.age) from p in Patients where p.mrn < {k}"
        )
        ages = [p.age for p in logical.patients if p.mrn < k]
        assert total == sum(ages)
        assert mean == pytest.approx(sum(ages) / len(ages))

    def test_count_with_residual_predicate_fetches(self, derby, catalog, logical):
        derby.start_cold_run()
        k = derby.config.mrn_threshold(40)
        (n,) = run_oql(
            catalog,
            f"select count(p) from p in Patients "
            f"where p.mrn < {k} and p.age < 50",
        )
        assert n == sum(
            1 for p in logical.patients if p.mrn < k and p.age < 50
        )

    def test_count_without_any_index_scans(self, derby, catalog, logical):
        derby.start_cold_run()
        (n,) = run_oql(
            catalog, "select count(p) from p in Patients where p.age >= 90"
        )
        assert n == sum(1 for p in logical.patients if p.age >= 90)

    def test_avg_of_empty_selection_is_none(self, derby, catalog):
        derby.start_cold_run()
        (mean,) = run_oql(
            catalog,
            "select avg(p.age) from p in Patients where p.age < 0",
        )
        assert mean is None


class TestOrderBy:
    def test_ascending(self, derby, catalog, logical):
        derby.start_cold_run()
        k = derby.config.mrn_threshold(10)
        rows = run_oql(
            catalog,
            f"select p.age from p in Patients where p.mrn < {k} "
            "order by p.age",
        )
        assert rows == sorted(rows)

    def test_descending(self, derby, catalog):
        derby.start_cold_run()
        rows = run_oql(
            catalog,
            "select p.age from p in Patients where p.mrn < 100 "
            "order by p.age desc",
        )
        assert rows == sorted(rows, reverse=True)

    def test_order_key_outside_projection(self, derby, catalog, logical):
        derby.start_cold_run()
        rows = run_oql(
            catalog,
            "select p.name from p in Patients where p.mrn < 50 "
            "order by p.mrn",
        )
        expected = [
            p.name for p in sorted(logical.patients, key=lambda p: p.mrn)
            if p.mrn < 50
        ]
        assert rows == expected

    def test_multi_term_order(self, derby, catalog):
        derby.start_cold_run()
        rows = run_oql(
            catalog,
            "select tuple(s: p.sex, a: p.age) from p in Patients "
            "where p.mrn < 200 order by p.sex, p.age desc",
        )
        assert rows == sorted(rows, key=lambda r: (r[0], -r[1]))

    def test_order_charges_sort_time(self, derby, catalog):
        from repro.simtime import Bucket

        derby.start_cold_run()
        run_oql(
            catalog,
            "select p.age from p in Patients where p.age >= 0 "
            "order by p.age",
        )
        assert derby.db.clock.bucket_s(Bucket.SORT) > 0

    def test_order_by_rejected_on_tree_join(self, derby, catalog):
        k1 = derby.config.mrn_threshold(10)
        k2 = derby.config.upin_threshold(10)
        with pytest.raises(PlanError):
            OQLEngine(catalog).plan(
                f"select tuple(n: p.name, a: pa.age) from p in Providers, "
                f"pa in p.clients where pa.mrn < {k1} and p.upin < {k2} "
                "order by pa.age"
            )

    def test_aggregate_rejected_on_tree_join(self, derby, catalog):
        k1 = derby.config.mrn_threshold(10)
        k2 = derby.config.upin_threshold(10)
        with pytest.raises(PlanError):
            OQLEngine(catalog).plan(
                f"select count(pa) from p in Providers, pa in p.clients "
                f"where pa.mrn < {k1} and p.upin < {k2}"
            )

    def test_aggregate_with_order_by_rejected(self, derby, catalog):
        with pytest.raises(PlanError):
            OQLEngine(catalog).plan(
                "select count(p) from p in Patients where p.mrn < 5 "
                "order by p.mrn"
            )
