"""Scale invariance — the methodological claim everything rests on.

DESIGN.md §5 argues that because object counts and memory budgets scale
together, within-figure *ratios* are scale-free.  These tests run the
same experiments at two scales and check that the ratios (and winners)
agree — the license for reproducing the paper's figures at 1/100.
"""

from __future__ import annotations

import pytest

from repro.bench import ExperimentRunner
from repro.cluster import load_derby
from repro.derby import DerbyConfig
from repro.derby.config import Clustering


def runner_at(scale: float, clustering=Clustering.CLASS) -> ExperimentRunner:
    return ExperimentRunner(
        load_derby(DerbyConfig.db_1to3(scale=scale, clustering=clustering))
    )


class TestScaleInvariance:
    @pytest.mark.parametrize("algo", ["PHJ", "NOJOIN", "NL"])
    def test_elapsed_time_scales_linearly(self, algo):
        small = runner_at(0.002).run_join(algo, 30, 30)
        large = runner_at(0.004).run_join(algo, 30, 30)
        # Twice the database => about twice the simulated time.
        assert large.elapsed_s / small.elapsed_s == pytest.approx(2.0, rel=0.3)

    def test_algorithm_ratios_stable_across_scales(self):
        def ratios(scale: float) -> dict[str, float]:
            runner = runner_at(scale)
            times = {
                algo: runner.run_join(algo, 10, 90).elapsed_s
                for algo in ("PHJ", "CHJ", "NOJOIN", "NL")
            }
            best = min(times.values())
            return {algo: t / best for algo, t in times.items()}

        small, large = ratios(0.002), ratios(0.004)
        for algo in small:
            assert small[algo] == pytest.approx(large[algo], rel=0.4), algo
        # Same winner at both scales.
        assert min(small, key=small.get) == min(large, key=large.get)

    def test_winner_stable_in_composition_too(self):
        def winner(scale: float) -> str:
            runner = runner_at(scale, Clustering.COMPOSITION)
            times = {
                algo: runner.run_join(algo, 10, 10).elapsed_s
                for algo in ("PHJ", "NOJOIN", "NL")
            }
            return min(times, key=times.get)

        assert winner(0.002) == winner(0.004) == "NL"

    def test_miss_rates_scale_free(self):
        """Client-cache miss rates depend only on ratios, so they must
        be nearly identical across scales."""
        small = runner_at(0.002).run_join("NOJOIN", 90, 10)
        large = runner_at(0.004).run_join("NOJOIN", 90, 10)
        assert small.meters.client_miss_rate == pytest.approx(
            large.meters.client_miss_rate, abs=0.08
        )
