"""Unit and integration tests for the crash-recovery subsystem."""

from __future__ import annotations

import pytest

from repro.errors import RecoveryError, ServiceError, SimulatedCrashError
from repro.objects import AttrKind, AttributeDef, Database, Schema
from repro.recovery import (
    CRASH_POINTS,
    CrashInjector,
    crash_database,
    restart,
    run_case,
    run_fuzz,
    take_checkpoint,
)
from repro.simtime import CostParams, SimClock
from repro.storage.page import EMPTY_PAGE_IMAGE, Page
from repro.storage.rid import Rid
from repro.txn import TransactionManager, WriteAheadLog

_PAD = "p" * 40


def make_db() -> Database:
    schema = Schema()
    schema.define(
        "Thing",
        [
            AttributeDef("x", AttrKind.INT32),
            AttributeDef("pad", AttrKind.STRING, width=len(_PAD)),
        ],
    )
    db = Database(schema)
    db.create_file("things")
    return db


def make_loaded(n: int = 8) -> tuple[Database, TransactionManager, list[Rid]]:
    """A database with ``n`` durably-written base records and a
    recovery-mode transaction manager."""
    db = make_db()
    rids = [
        db.create_object("Thing", {"x": i, "pad": _PAD}, "things")
        for i in range(n)
    ]
    db.shutdown()
    txm = TransactionManager(db, recovery=True)
    return db, txm, rids


def read_x(db: Database, rid: Rid):
    return db.manager.get_attr_at(rid, "x")


# ------------------------------------------------------------- page images

class TestPageImage:
    def test_capture_restore_roundtrip(self):
        page = Page(0, 0)
        page.insert(b"alpha")
        page.insert(b"beta")
        page.page_lsn = 7
        image = page.capture()
        page.update(0, b"ALPHA")
        page.delete(1)
        page.restore(image)
        assert page.read(0) == b"alpha"
        assert page.read(1) == b"beta"
        assert page.page_lsn == 7
        assert page.used_bytes == image.used

    def test_capture_maps_forwarding_entries(self):
        page = Page(0, 0)
        page.insert(b"moved")
        target = Rid(0, 3, 1)
        page.forward(0, target)
        image = page.capture()
        assert image.slots[0] == target
        fresh = Page(0, 0)
        fresh.restore(image)
        assert fresh.forward_target(0) == target

    def test_apply_undo_reverts_only_changed_slots(self):
        """Undo must not clobber another transaction's later change to a
        different slot of the same page."""
        page = Page(0, 0)
        page.insert(b"mine-old")
        page.insert(b"theirs-old")
        before = page.capture()
        page.update(0, b"mine-new!")
        after = page.capture()
        # Another transaction commits to slot 1 afterwards.
        page.update(1, b"theirs-new")
        page.apply_undo(before, after)
        assert page.read(0) == b"mine-old"
        assert page.read(1) == b"theirs-new"

    def test_apply_undo_of_insert_never_reuses_the_slot(self):
        page = Page(0, 0)
        page.insert(b"base")
        before = page.capture()
        slot = page.insert(b"loser")
        after = page.capture()
        page.apply_undo(before, after)
        # The directory keeps the dead slot so rids are never reissued.
        assert page.insert(b"winner") == slot + 1
        assert page.slots() == [0, slot + 1]


# ------------------------------------------------------------- physical WAL

class TestPhysicalLog:
    def make(self):
        clock = SimClock()
        return clock, WriteAheadLog(clock, CostParams())

    def test_lsns_are_monotonic(self):
        __, log = self.make()
        lsns = [log.append(1, "update", 32).lsn for __ in range(5)]
        assert lsns == [1, 2, 3, 4, 5]

    def test_stamp_sets_page_lsn_and_dirty_page_table(self):
        __, log = self.make()
        page = Page(0, 0)
        first = log.append(1, "update", 32, page_key=(0, 0))
        log.stamp(page, first)
        second = log.append(1, "update", 32, page_key=(0, 0))
        log.stamp(page, second)
        assert page.page_lsn == second.lsn
        # rec_lsn stays the FIRST record that dirtied the page.
        assert log.dirty_pages == {(0, 0): first.lsn}
        log.note_page_written((0, 0))
        assert log.dirty_pages == {}

    def test_flush_advances_durable_boundary(self):
        __, log = self.make()
        log.append(1, "update", 32)
        last = log.append(1, "commit", 16)
        assert log.durable_lsn == 0
        log.flush()
        assert log.durable_lsn == last.lsn
        assert [r.lsn for r in log.durable_records()] == [1, 2]

    def test_partial_flush_leaves_durable_prefix(self):
        """A flush torn after k of n pages makes durable exactly the
        records that fit entirely within those k pages."""
        __, log = self.make()
        from repro.units import PAGE_SIZE

        records = [log.append(1, "update", PAGE_SIZE // 2) for __ in range(6)]
        pages = log.flush(max_pages=1)
        assert pages == 1
        assert log.durable_lsn == records[1].lsn  # 2 halves fill page 1
        assert log.pending_bytes == 4 * (PAGE_SIZE // 2)
        # The next full flush picks up the torn tail.
        log.flush()
        assert log.durable_lsn == records[-1].lsn
        assert log.pending_bytes == 0

    def test_crash_truncates_to_durable(self):
        __, log = self.make()
        log.append(1, "update", 32)
        log.flush()
        log.append(1, "update", 32)
        log.append(1, "commit", 16)
        log.crash()
        assert [r.lsn for r in log.records] == [1]
        assert log.pending_bytes == 0


# ------------------------------------------------------------- the WAL rule

class TestWalRule:
    def test_dirty_page_write_forces_log_flush(self):
        db, txm, rids = make_loaded()
        with txm.begin() as txn:
            txn.update_scalar(rids[0], "x", 999)
            # Commit has not happened yet: the update record is pending.
            assert txm.log.durable_lsn < txm.log.next_lsn - 1
            before = txm.log.forced_flushes
            db.disk.write_page(rids[0].file_id, rids[0].page_no)
            assert txm.log.forced_flushes == before + 1
            assert txm.log.durable_lsn == txm.log.next_lsn - 1

    def test_clean_page_write_does_not_flush(self):
        db, txm, rids = make_loaded()
        before = txm.log.forced_flushes
        db.disk.write_page(rids[0].file_id, rids[0].page_no)
        assert txm.log.forced_flushes == before


# ------------------------------------------------------------- rollback

class TestPhysicalRollback:
    def test_abort_restores_updated_value(self):
        db, txm, rids = make_loaded()
        txn = txm.begin()
        txn.update_scalar(rids[0], "x", 12345)
        assert read_x(db, rids[0]) == 12345
        txn.abort()
        assert read_x(db, rids[0]) == 0
        kinds = [r.kind for r in txm.log.records]
        assert "clr" in kinds and kinds[-1] == "abort"

    def test_abort_removes_created_object(self):
        db, txm, rids = make_loaded()
        txn = txm.begin()
        rid = txn.create_object("Thing", {"x": 7, "pad": _PAD}, "things")
        count = db.file("things").record_count
        txn.abort()
        assert db.file("things").record_count == count - 1
        with pytest.raises(Exception):
            read_x(db, rid)

    def test_clr_records_are_not_undone_twice(self):
        """The rollback skips changes already compensated — abort after a
        partial rollback (modeled by calling the internal helper) stays
        idempotent."""
        db, txm, rids = make_loaded()
        txn = txm.begin()
        txn.update_scalar(rids[0], "x", 111)
        txn.update_scalar(rids[1], "x", 222)
        txn._rollback_physical()
        clrs = sum(1 for r in txm.log.records if r.kind == "clr")
        txn.abort()  # runs the rollback again, then logs the abort
        assert sum(1 for r in txm.log.records if r.kind == "clr") == clrs
        assert read_x(db, rids[0]) == 0
        assert read_x(db, rids[1]) == 1


# ------------------------------------------------------------- restart

class TestRestart:
    def test_redo_recovers_committed_update(self):
        db, txm, rids = make_loaded()
        with txm.begin() as txn:
            txn.update_scalar(rids[0], "x", 4242)
        # Commit flushed the log but the data page was never written.
        crash_database(db, txm)
        assert read_x(db, rids[0]) == 0  # durable disk is stale
        report = restart(db, txm)
        assert read_x(db, rids[0]) == 4242
        assert report.records_redone >= 1
        assert report.txns_undone == 0
        assert report.seconds > 0

    def test_undo_rolls_back_loser(self):
        db, txm, rids = make_loaded()
        txn = txm.begin()
        txn.update_scalar(rids[0], "x", 777)
        txm.log.flush()  # the update record is durable, the txn is not
        crash_database(db, txm)
        report = restart(db, txm)
        assert read_x(db, rids[0]) == 0
        assert report.losers == (txn.txn_id,)
        assert report.records_undone >= 1
        kinds = [r.kind for r in txm.log.records]
        assert "clr" in kinds and "abort" in kinds

    def test_unflushed_loser_leaves_no_trace(self):
        db, txm, rids = make_loaded()
        txn = txm.begin()
        txn.update_scalar(rids[0], "x", 777)
        crash_database(db, txm)  # nothing was flushed
        report = restart(db, txm)
        assert read_x(db, rids[0]) == 0
        assert report.txns_undone == 0
        assert report.records_redone == 0

    def test_committed_create_survives_crash(self):
        db, txm, __ = make_loaded()
        with txm.begin() as txn:
            rid = txn.create_object("Thing", {"x": 55, "pad": _PAD}, "things")
        crash_database(db, txm)
        restart(db, txm)
        assert read_x(db, rid) == 55
        # The volatile per-file counter was rebuilt from the pages.
        assert db.file("things").record_count == 9

    def test_checkpoint_bounds_restart_scan(self):
        db, txm, rids = make_loaded()
        for i in range(6):
            with txm.begin() as txn:
                txn.update_scalar(rids[i], "x", 1000 + i)
        no_cp_case = make_loaded()
        take_checkpoint(db, txm)
        with txm.begin() as txn:
            txn.update_scalar(rids[6], "x", 1006)
        crash_database(db, txm)
        report = restart(db, txm)
        assert report.checkpoint_lsn > 0
        for i in range(7):
            assert read_x(db, rids[i]) == 1000 + i
        # Same tail workload without the checkpoint scans more records.
        db2, txm2, rids2 = no_cp_case
        for i in range(6):
            with txm2.begin() as txn:
                txn.update_scalar(rids2[i], "x", 1000 + i)
        with txm2.begin() as txn:
            txn.update_scalar(rids2[6], "x", 1006)
        crash_database(db2, txm2)
        report2 = restart(db2, txm2)
        assert report2.log_records_scanned > report.log_records_scanned

    def test_checkpoint_att_and_dpt_content(self):
        db, txm, rids = make_loaded()
        open_txn = txm.begin()
        open_txn.update_scalar(rids[0], "x", 5)
        record = take_checkpoint(db, txm, flush_pages=False)
        assert record.kind == "checkpoint"
        assert [t for t, __ in record.att] == [open_txn.txn_id]
        assert (rids[0].file_id, rids[0].page_no) in dict(record.dpt)
        # The flushing variant empties the dirty-page table instead.
        flushed = take_checkpoint(db, txm)
        assert flushed.dpt == ()
        open_txn.abort()

    def test_restart_is_idempotent(self):
        db, txm, rids = make_loaded()
        txn = txm.begin()
        txn.update_scalar(rids[0], "x", 31)
        txm.log.flush()
        crash_database(db, txm)
        restart(db, txm)
        value = read_x(db, rids[0])
        crash_database(db, txm)
        second = restart(db, txm)
        assert read_x(db, rids[0]) == value == 0
        assert second.records_undone == 0  # the CLRs made undo a no-op


# ------------------------------------------------------------- injector

class TestCrashInjector:
    def test_unknown_point_rejected(self):
        with pytest.raises(RecoveryError):
            CrashInjector("fsync")
        with pytest.raises(RecoveryError):
            CrashInjector("log-append", occurrence=0)

    def test_log_append_fires_on_nth_occurrence(self):
        db, txm, rids = make_loaded()
        injector = CrashInjector("log-append", occurrence=3)
        injector.arm(db, txm.log)
        txn = txm.begin()  # append #1: begin
        txn.update_scalar(rids[0], "x", 1)  # append #2: update
        with pytest.raises(SimulatedCrashError):
            txn.update_scalar(rids[1], "x", 2)  # append #3 fires
        assert injector.fired

    def test_fired_injector_refuses_further_work(self):
        db, txm, rids = make_loaded()
        injector = CrashInjector("log-append", occurrence=1)
        injector.arm(db, txm.log)
        txn_raised = pytest.raises(SimulatedCrashError)
        with txn_raised:
            txm.begin()
        with pytest.raises(SimulatedCrashError):
            txm.log.flush()
        with pytest.raises(SimulatedCrashError):
            db.disk.write_page(rids[0].file_id, rids[0].page_no)

    def test_flush_write_gap_loses_page_but_not_log(self):
        db, txm, rids = make_loaded()
        injector = CrashInjector("flush-write-gap", occurrence=1)
        injector.arm(db, txm.log)
        txn = txm.begin()
        txn.update_scalar(rids[0], "x", 64)
        with pytest.raises(SimulatedCrashError):
            db.disk.write_page(rids[0].file_id, rids[0].page_no)
        # The WAL rule ran before the page write: the log IS durable.
        assert txm.log.durable_lsn > 0
        crash_database(db, txm)
        restart(db, txm)
        assert read_x(db, rids[0]) == 0  # loser undone via the log

    def test_crash_database_disarms_and_truncates(self):
        db, txm, rids = make_loaded()
        injector = CrashInjector("log-append", occurrence=1)
        injector.arm(db, txm.log)
        with pytest.raises(SimulatedCrashError):
            txm.begin()
        crash_database(db, txm)
        assert txm.log.injector is None
        assert db.disk.injector is None
        assert txm.active_count == 0
        assert all(r.lsn <= txm.log.durable_lsn for r in txm.log.records)


# ------------------------------------------------------------- service

class TestServiceRecovery:
    def make_service(self, recovery: bool = True):
        from repro.cluster import load_derby
        from repro.derby import DerbyConfig
        from repro.service import QueryService

        derby = load_derby(DerbyConfig.db_1to3(scale=0.00001))
        return derby, QueryService(derby, recovery=recovery)

    def test_crash_requires_recovery_mode(self):
        __, service = self.make_service(recovery=False)
        with pytest.raises(ServiceError):
            service.crash()
        with pytest.raises(ServiceError):
            service.recover()
        with pytest.raises(ServiceError):
            service.checkpoint()

    def test_crash_and_recover_roundtrip(self):
        derby, service = self.make_service()
        session = service.open_session("s")
        rid = derby.patient_rids[0]
        with service.immediate(session):
            session.begin()
            session.write_lock(rid)
            session.update_scalar(rid, "age", 33)
            session.commit()
        service.crash()
        report = service.recover()
        assert derby.db.manager.get_attr_at(rid, "age") == 33
        assert report.txns_undone == 0

    def test_mixer_crash_sets_crashed_and_recovers(self):
        from repro.cluster import load_derby
        from repro.derby import DerbyConfig
        from repro.service import MixConfig, WorkloadMixer

        derby = load_derby(DerbyConfig.db_1to3(scale=0.00001))
        injector = CrashInjector("mix-run", occurrence=12)
        mixer = WorkloadMixer(
            derby, MixConfig.from_clients(4, seed=1), injector=injector
        )
        report = mixer.run()
        assert report.crashed
        assert injector.fired
        recovery = mixer.service.recover()
        assert recovery.seconds > 0
        # The database is usable again.
        age = derby.db.manager.get_attr_at(derby.patient_rids[0], "age")
        assert isinstance(age, int)

    def test_mixer_without_injector_is_unchanged(self):
        from repro.cluster import load_derby
        from repro.derby import DerbyConfig
        from repro.service import MixConfig, WorkloadMixer

        derby = load_derby(DerbyConfig.db_1to3(scale=0.00001))
        mixer = WorkloadMixer(derby, MixConfig.from_clients(3, seed=1))
        report = mixer.run()
        assert not report.crashed
        assert mixer.service.recovery is False


# ------------------------------------------------------------- fuzz + export

class TestFuzz:
    def test_single_case_passes(self):
        result = run_case(0, "log-append")
        assert result.ok, result.failures

    def test_grid_smoke_with_determinism(self):
        results = run_fuzz(range(2), points=CRASH_POINTS, txns=6)
        assert len(results) == 2 * len(CRASH_POINTS)
        bad = [r for r in results if not r.ok]
        assert not bad, bad[0].failures if bad else None

    def test_recovery_csv_shape(self):
        from types import SimpleNamespace

        from repro.stats import recovery_to_csv

        rows = [
            SimpleNamespace(
                label="case", crash_point="log-append", checkpoint_every=3,
                txns=5, updates=9, committed=3, lost=2, recovery_s=0.25,
                log_records_scanned=17, log_pages_read=1, pages_redone=2,
                records_redone=4, txns_undone=2, records_undone=3,
                durability_ok=1,
            )
        ]
        text = recovery_to_csv(rows)
        header, line = text.strip().splitlines()
        assert header.startswith("label,crash_point,checkpoint_every")
        assert line.split(",")[0] == "case"
        assert "0.2500" in line
        assert len(line.split(",")) == len(header.split(","))
