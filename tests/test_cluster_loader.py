"""Integration tests for the clustering loaders.

These build small but complete Derby databases under every physical
organization and verify both correctness (every reference resolves, sets
match the logical association) and the physical properties the paper's
experiments rely on (placement order, index clustering ratios).
"""

from __future__ import annotations

import pytest

from repro.cluster import DerbyDatabase, load_derby
from repro.cluster.strategies import placement_order
from repro.derby import DerbyConfig, generate
from repro.derby.config import Clustering
from repro.objects.codec import InlineSet, OverflowSet


def tiny_config(clustering=Clustering.CLASS, **overrides) -> DerbyConfig:
    return DerbyConfig(
        n_providers=20,
        n_patients=600,
        clustering=clustering,
        scale=0.001,
        params=DerbyConfig.db_1to3(scale=0.001).params,
        **overrides,
    )


@pytest.fixture(scope="module")
def class_db() -> DerbyDatabase:
    return load_derby(tiny_config(Clustering.CLASS))


@pytest.fixture(scope="module")
def comp_db() -> DerbyDatabase:
    return load_derby(tiny_config(Clustering.COMPOSITION))


@pytest.fixture(scope="module")
def random_db() -> DerbyDatabase:
    return load_derby(tiny_config(Clustering.RANDOM))


class TestPlacementOrder:
    def test_class_order_is_providers_then_patients(self):
        logical = generate(tiny_config())
        steps = list(placement_order(logical, Clustering.CLASS))
        kinds = [k for k, __, ___ in steps]
        assert kinds == ["P"] * 20 + ["p"] * 600

    def test_composition_interleaves_by_owner(self):
        logical = generate(tiny_config())
        steps = list(placement_order(logical, Clustering.COMPOSITION))
        owner = None
        for kind, idx, __ in steps:
            if kind == "P":
                owner = idx
            else:
                assert logical.patients[idx].provider_idx == owner

    def test_random_order_is_shuffled_but_complete(self):
        logical = generate(tiny_config())
        steps = list(placement_order(logical, Clustering.RANDOM))
        assert len(steps) == 620
        kinds = [k for k, __, ___ in steps]
        assert kinds != ["P"] * 20 + ["p"] * 600
        assert sorted(i for k, i, __ in steps if k == "P") == list(range(20))
        assert sorted(i for k, i, __ in steps if k == "p") == list(range(600))

    def test_association_uses_two_files(self):
        logical = generate(tiny_config())
        steps = list(placement_order(logical, Clustering.ASSOCIATION))
        files = {k: {f for kk, __, f in steps if kk == k} for k in ("P", "p")}
        assert files["P"] == {"providers"}
        assert files["p"] == {"patients"}


class TestLoadedDatabase:
    def test_counts(self, class_db):
        assert len(class_db.provider_rids) == 20
        assert len(class_db.patient_rids) == 600
        assert len(class_db.providers) == 20
        assert len(class_db.patients) == 600

    def test_every_patient_references_its_provider(self, class_db):
        logical = generate(class_db.config)
        om = class_db.db.manager
        for j, prid in enumerate(class_db.patient_rids):
            owner_rid = om.get_attr_at(prid, "primary_care_provider")
            owner_upin = om.get_attr_at(owner_rid, "upin")
            assert owner_upin == logical.patients[j].random_integer

    def test_clients_sets_match_association(self, class_db):
        logical = generate(class_db.config)
        om = class_db.db.manager
        db = class_db.db
        for i in range(20):
            handle = om.load(class_db.provider_rids[i])
            clients = om.get_attr(handle, "clients")
            om.unref(handle)
            members = set(db.iter_set_rids(clients))
            expected = {
                class_db.patient_rids[j]
                for j in logical.providers[i].patient_idxs
            }
            assert members == expected

    def test_indexes_complete(self, class_db):
        assert class_db.by_mrn.entry_count == 600
        assert class_db.by_upin.entry_count == 20
        assert class_db.by_num.entry_count == 600

    def test_index_lookup_returns_right_object(self, class_db):
        om = class_db.db.manager
        rids = class_db.by_mrn.lookup(42)
        assert len(rids) == 1
        assert om.get_attr_at(rids[0], "mrn") == 42

    def test_mrn_index_clustered_in_class_layout(self, class_db):
        """mrn follows creation order, which class clustering preserves."""
        assert class_db.by_mrn.clustering_ratio > 0.95

    def test_num_index_unclustered(self, class_db):
        """num is a random key: ~half the adjacent pairs are out of order."""
        assert class_db.by_num.clustering_ratio < 0.65

    def test_mrn_index_unclustered_in_composition_layout(self, comp_db):
        """Composition reorders patients by provider, so mrn order no
        longer matches physical order — the effect behind Figure 13's
        slow NOJOIN."""
        assert comp_db.by_mrn.clustering_ratio < 0.65

    def test_upin_index_clustered_everywhere_but_random(
        self, class_db, comp_db, random_db
    ):
        assert class_db.by_upin.clustering_ratio > 0.9
        assert comp_db.by_upin.clustering_ratio > 0.9
        assert random_db.by_upin.clustering_ratio < 0.75

    def test_class_layout_uses_two_data_files(self, class_db):
        assert class_db.db.has_file("providers")
        assert class_db.db.has_file("patients")

    def test_composition_layout_uses_one_data_file(self, comp_db):
        assert comp_db.db.has_file("objects")
        assert not comp_db.db.has_file("providers")

    def test_load_report(self, class_db):
        report = class_db.load_report
        assert report.objects_created == 620
        assert report.seconds > 0
        assert report.commits >= 1
        assert report.disk_pages > 0

    def test_start_cold_run(self, class_db):
        class_db.start_cold_run()
        assert class_db.db.clock.elapsed_s == 0.0
        assert class_db.db.counters.disk_reads == 0
        assert len(class_db.db.system.client_cache) == 0


class TestSetSpilling:
    def test_1to1000_clients_spill(self):
        cfg = DerbyConfig(
            n_providers=2,
            n_patients=1200,
            clustering=Clustering.CLASS,
            scale=0.001,
        )
        derby = load_derby(cfg)
        om = derby.db.manager
        handle = om.load(derby.provider_rids[0])
        clients = om.get_attr(handle, "clients")
        om.unref(handle)
        assert isinstance(clients, OverflowSet)
        assert clients.count > 400

    def test_1to3_clients_inline(self, class_db):
        om = class_db.db.manager
        handle = om.load(class_db.provider_rids[0])
        clients = om.get_attr(handle, "clients")
        om.unref(handle)
        assert isinstance(clients, InlineSet)


class TestLoadingModes:
    def test_logged_load_costs_more(self):
        fast = load_derby(tiny_config(logged_load=False)).load_report.seconds
        slow = load_derby(tiny_config(logged_load=True)).load_report.seconds
        assert slow > fast

    def test_index_after_load_rewrites_headers(self):
        derby = load_derby(tiny_config(index_first=False))
        reports = derby.load_report.index_reports
        assert set(reports) == {
            "Providers_by_upin",
            "Patients_by_mrn",
            "Patients_by_num",
        }
        # First patient index grows every header...
        assert reports["Patients_by_mrn"].headers_grown == 600
        # ...the second one finds free slots.
        assert reports["Patients_by_num"].headers_grown == 0

    def test_index_first_avoids_record_moves_from_indexing(self):
        first = load_derby(tiny_config(index_first=True))
        after = load_derby(tiny_config(index_first=False))
        assert (
            after.load_report.records_moved > first.load_report.records_moved
        )

    def test_commit_batching(self):
        derby = load_derby(tiny_config(commit_batch=100))
        assert derby.load_report.commits >= 6

    def test_queries_agree_across_clusterings(self, class_db, comp_db, random_db):
        """Three physical representations of the same logical database
        must answer the same question identically."""
        def ages(derby: DerbyDatabase) -> list[int]:
            om = derby.db.manager
            out = []
            for entry in derby.by_mrn.range_scan(None, 50):
                out.append(om.get_attr_at(entry.rid, "age"))
            return out

        assert ages(class_db) == ages(comp_db) == ages(random_db)
