"""Tests for MVCC snapshot isolation: snapshot stability, the
first-committer-wins rule, lock-free reads, version GC, crash behaviour
and the service/mixer integration."""

from __future__ import annotations

import pytest

from repro.cluster import load_derby
from repro.derby import DerbyConfig
from repro.errors import (
    RecordNotVisibleError,
    ServiceError,
    TransactionStateError,
    WriteConflictError,
)
from repro.objects import (
    AttrKind,
    AttributeDef,
    Database,
    Schema,
    VersionManager,
)
from repro.objects.handle import FULL_HANDLE_BYTES, VERSION_REF_BYTES
from repro.recovery import crash_database, restart
from repro.service import MixConfig, QueryService, WorkloadMixer
from repro.stats.export import mix_to_csv
from repro.storage.rid import Rid
from repro.txn import TransactionManager

_PAD = "p" * 40


def make_loaded(n: int = 8):
    """A database with ``n`` durable base records and a recovery-mode
    transaction manager (SI requires physical logging)."""
    schema = Schema()
    schema.define(
        "Thing",
        [
            AttributeDef("x", AttrKind.INT32),
            AttributeDef("pad", AttrKind.STRING, width=len(_PAD)),
        ],
    )
    db = Database(schema)
    db.create_file("things")
    rids = [
        db.create_object("Thing", {"x": i, "pad": _PAD}, "things")
        for i in range(n)
    ]
    db.shutdown()
    txm = TransactionManager(db, recovery=True)
    return db, txm, rids


def fresh_tiny_derby():
    return load_derby(DerbyConfig.db_1to3(scale=0.00001))


# -------------------------------------------------------------- begin rules


class TestBeginRules:
    def test_si_requires_recovery_mode(self):
        schema = Schema()
        schema.define("Thing", [AttributeDef("x", AttrKind.INT32)])
        db = Database(schema)
        txm = TransactionManager(db, recovery=False)
        with pytest.raises(TransactionStateError):
            txm.begin(isolation="si")

    def test_si_requires_logged_transaction(self):
        db, txm, __ = make_loaded(1)
        with pytest.raises(TransactionStateError):
            txm.begin(logged=False, isolation="si")

    def test_unknown_isolation_rejected(self):
        db, txm, __ = make_loaded(1)
        with pytest.raises(ValueError):
            txm.begin(isolation="serializable")

    def test_pure_2pl_never_enables_mvcc(self):
        db, txm, rids = make_loaded(2)
        with txm.begin() as txn:
            txn.update_scalar(rids[0], "x", 99)
        assert not txm.mvcc_enabled
        assert txm.mvcc.version_count == 0
        assert txm.commit_ts == 0


# --------------------------------------------------------------- visibility


class TestSnapshotVisibility:
    def test_snapshot_is_stable_across_concurrent_commit(self):
        db, txm, rids = make_loaded(4)
        reader = txm.begin(isolation="si")
        assert reader.read_attr(rids[0], "x") == 0
        writer = txm.begin()
        writer.update_scalar(rids[0], "x", 100)
        writer.commit()
        # The live record moved on; the snapshot must not.
        assert reader.read_attr(rids[0], "x") == 0
        reader.commit()
        late = txm.begin(isolation="si")
        assert late.read_attr(rids[0], "x") == 100
        late.commit()

    def test_read_your_own_writes(self):
        db, txm, rids = make_loaded(2)
        txn = txm.begin(isolation="si")
        txn.update_scalar(rids[0], "x", 42)
        assert txn.read_attr(rids[0], "x") == 42
        txn.commit()

    def test_uncommitted_writer_is_invisible_to_snapshots(self):
        db, txm, rids = make_loaded(2)
        txm.enable_mvcc()
        writer = txm.begin()
        writer.update_scalar(rids[0], "x", 7)
        reader = txm.begin(isolation="si")
        assert reader.read_attr(rids[0], "x") == 0
        reader.commit()
        writer.commit()

    def test_object_created_after_snapshot_is_invisible(self):
        db, txm, rids = make_loaded(2)
        reader = txm.begin(isolation="si")
        writer = txm.begin()
        new_rid = writer.create_object(
            "Thing", {"x": 77, "pad": _PAD}, "things"
        )
        writer.commit()
        with pytest.raises(RecordNotVisibleError):
            reader.read_attr(new_rid, "x")
        reader.commit()
        late = txm.begin(isolation="si")
        assert late.read_attr(new_rid, "x") == 77
        late.commit()

    def test_si_readers_take_no_read_locks(self):
        db, txm, rids = make_loaded(2)
        reader = txm.begin(isolation="si")
        reader.read_attr(rids[0], "x")
        # Under strict 2PL the reader's S lock would block this X lock;
        # lock-free snapshot reads let the writer proceed immediately.
        writer = txm.begin()
        writer.update_scalar(rids[0], "x", 5)
        writer.commit()
        assert reader.read_attr(rids[0], "x") == 0
        reader.commit()

    def test_version_handle_is_charged_the_version_pointer(self):
        db, txm, rids = make_loaded(2)
        reader = txm.begin(isolation="si")
        reader.read_attr(rids[0], "x")
        writer = txm.begin()
        writer.update_scalar(rids[0], "x", 9)
        writer.commit()
        # This load resolves through the version chain: the handle it
        # materializes carries the Section 4.4 version pointer (and its
        # extra bytes) for as long as the reference is held.
        om = db.manager
        saved = om.read_view
        om.read_view = reader.view
        try:
            handle = om.load(rids[0])
        finally:
            om.read_view = saved
        assert handle.version is not None
        assert handle.memory_bytes == FULL_HANDLE_BYTES + VERSION_REF_BYTES
        om.unref(handle)
        # Version handles are freed outright at refcount zero.
        assert (rids[0], handle.version) not in db.handles._versioned
        reader.commit()


# ---------------------------------------------------- first-committer-wins


class TestFirstCommitterWins:
    def test_later_committer_loses(self):
        db, txm, rids = make_loaded(2)
        first = txm.begin(isolation="si")
        second = txm.begin(isolation="si")
        first.update_scalar(rids[0], "x", 1)
        first.commit()
        with pytest.raises(WriteConflictError):
            second.update_scalar(rids[0], "x", 2)
        assert txm.conflicts == 1
        second.abort()
        assert db.manager.get_attr_at(rids[0], "x") == 1

    def test_retry_after_conflict_commits(self):
        db, txm, rids = make_loaded(2)
        first = txm.begin(isolation="si")
        second = txm.begin(isolation="si")
        first.update_scalar(rids[0], "x", 1)
        first.commit()
        with pytest.raises(WriteConflictError):
            second.update_scalar(rids[0], "x", 2)
        second.abort()
        # The retry opens a fresh snapshot that postdates the conflicting
        # commit, so the same write now succeeds.
        retry = txm.begin(isolation="si")
        retry.update_scalar(rids[0], "x", 2)
        retry.commit()
        assert db.manager.get_attr_at(rids[0], "x") == 2

    def test_commit_timestamps_are_monotonic(self):
        db, txm, rids = make_loaded(4)
        stamps = []
        for i, rid in enumerate(rids):
            txn = txm.begin(isolation="si")
            txn.update_scalar(rid, "x", i + 100)
            txn.commit()
            stamps.append(txn.commit_ts)
        assert stamps == sorted(stamps)
        assert len(set(stamps)) == len(stamps)
        assert txm.commit_ts == stamps[-1]


# ------------------------------------------------------------------ abort/GC


class TestChainsAndGc:
    def test_abort_withdraws_pending_versions(self):
        db, txm, rids = make_loaded(2)
        txm.enable_mvcc()
        txn = txm.begin(isolation="si")
        txn.update_scalar(rids[0], "x", 50)
        assert txm.mvcc.version_count == 1
        txn.abort()
        assert txm.mvcc.version_count == 0
        assert db.manager.get_attr_at(rids[0], "x") == 0

    def test_vacuum_respects_the_oldest_snapshot(self):
        db, txm, rids = make_loaded(2)
        reader = txm.begin(isolation="si")
        reader.read_attr(rids[0], "x")
        for value in (10, 20, 30):
            writer = txm.begin(isolation="si")
            writer.update_scalar(rids[0], "x", value)
            writer.commit()
        before = txm.mvcc.version_count
        assert before >= 3
        txm.vacuum()
        # The open snapshot pins the horizon: its version must survive.
        assert reader.read_attr(rids[0], "x") == 0
        reader.commit()
        freed = txm.vacuum()
        assert freed > 0
        assert txm.mvcc.version_count < before
        late = txm.begin(isolation="si")
        assert late.read_attr(rids[0], "x") == 30
        late.commit()


# ------------------------------------------------------------------- restart


class TestCrashRestart:
    def test_restart_discards_chains_and_restores_commit_ts(self):
        db, txm, rids = make_loaded(2)
        for value in (11, 22):
            txn = txm.begin(isolation="si")
            txn.update_scalar(rids[0], "x", value)
            txn.commit()
        high_water = txm.commit_ts
        assert high_water == 2
        loser = txm.begin(isolation="si")
        loser.update_scalar(rids[1], "x", 99)
        txm.log.flush()  # the loser's update record is durable, it is not
        crash_database(db, txm)
        restart(db, txm)
        assert txm.mvcc.version_count == 0
        assert txm.commit_ts == high_water
        assert txm.oldest_snapshot_ts is None
        # The loser's in-flight update was undone; committed state holds.
        assert db.manager.get_attr_at(rids[0], "x") == 22
        assert db.manager.get_attr_at(rids[1], "x") == 1
        txn = txm.begin(isolation="si")
        txn.update_scalar(rids[0], "x", 33)
        txn.commit()
        assert txn.commit_ts == high_water + 1

    def test_version_manager_catalog_survives_crash(self):
        # Regression: VersionManager._chains was a volatile dict that
        # vanished across crash()/restart(); the catalog is persistent
        # now and reloads lazily after restart.
        db, txm, rids = make_loaded(2)
        txn = txm.begin()
        txn.update_scalar(rids[0], "x", 5)
        txn.commit()
        versions = VersionManager(db)  # registers as db.version_manager
        info = versions.snapshot(rids[0], label="before-crash")
        assert info.version_no == 1
        db.shutdown()  # the version + catalog records reach durable disk
        crash_database(db, txm)
        restart(db, txm)
        versions = db.version_manager.versions(rids[0])
        assert [v.version_no for v in versions] == [1]
        assert versions[0].label == "before-crash"
        assert db.version_manager.read_version(rids[0], 1)["x"] == 5


# ------------------------------------------------------------------- service


class TestServiceIntegration:
    def test_service_si_requires_recovery(self):
        derby = fresh_tiny_derby()
        with pytest.raises(ServiceError):
            QueryService(derby, isolation="si")

    def test_session_isolation_override(self):
        derby = fresh_tiny_derby()
        service = QueryService(derby, recovery=True)
        with pytest.raises(ServiceError):
            service.open_session(isolation="read-committed")
        session = service.open_session(isolation="si")
        txn = session.begin()
        assert txn.isolation == "si"
        assert txn.snapshot is not None
        session.commit()

    def test_scan_repeats_identically_while_updater_commits(self):
        derby = fresh_tiny_derby()
        service = QueryService(derby, recovery=True, isolation="si")
        scanner = service.open_session("scanner")
        updater = service.open_session("updater", isolation="2pl")
        threshold = derby.config.num_threshold(50.0)
        oql = f"select p.age from p in Patients where p.num > {threshold}"
        scans: list[list] = []

        def scan_body():
            scanner.begin()
            scans.append(scanner.execute(oql))
            scanner.pause()  # the updater commits here
            scans.append(scanner.execute(oql))
            scanner.commit()

        def update_body():
            updater.begin()
            for rid in derby.patient_rids[:4]:
                updater.update_scalar(rid, "age", 1)
            updater.commit()

        service.spawn(scanner, scan_body)
        service.spawn(updater, update_body)
        tasks = service.run()
        service.close()
        assert all(t.error is None for t in tasks)
        # Same snapshot, same rows — the committed update is invisible.
        assert scans[0] == scans[1]
        assert scanner.metrics.lock_waits == 0
        late = service.txm.begin(isolation="si")
        assert late.read_attr(derby.patient_rids[0], "age") == 1
        late.commit()

    def test_si_mix_readers_wait_on_no_locks(self):
        config = MixConfig(
            navigators=1,
            scanners=1,
            updaters=2,
            ops_per_client=3,
            seed=7,
            isolation="si",
            lock_timeout_s=0.5,
            hot_set=4,
        )
        report = WorkloadMixer(fresh_tiny_derby(), config).run()
        assert report.committed > 0
        assert report.gave_up == 0
        for sr in report.sessions:
            if sr.profile != "updater":
                assert sr.metrics.lock_waits == 0

    def test_si_and_2pl_keyed_mixes_commit_identical_state(self):
        config = MixConfig(
            navigators=0,
            scanners=0,
            updaters=3,
            ops_per_client=4,
            seed=3,
            lock_timeout_s=0.5,
            max_retries=8,
            hot_set=4,
            update_values="keyed",
            recovery=True,
        )

        def end_state(isolation: str):
            from dataclasses import replace

            derby = fresh_tiny_derby()
            mixer = WorkloadMixer(
                derby, replace(config, isolation=isolation)
            )
            report = mixer.run()
            assert report.gave_up == 0
            hot = derby.patient_rids[: config.hot_set]
            om = derby.db.manager
            return [om.get_attr_at(rid, "age") for rid in hot]

        assert end_state("2pl") == end_state("si")

    def test_mix_csv_carries_conflict_columns(self):
        config = MixConfig.from_clients(
            3, ops_per_client=2, seed=2, isolation="si", lock_timeout_s=0.5
        )
        report = WorkloadMixer(fresh_tiny_derby(), config).run()
        csv = mix_to_csv(report)
        header = csv.splitlines()[0].split(",")
        assert "conflicts" in header
        assert "lock_waits" in header
        # The tail of the schema is pinned — downstream plots index it.
        assert header[-6:] == [
            "first_row_ms",
            "peak_rows",
            "retries",
            "cancelled",
            "over_budget",
            "queue_wait_ms",
        ]
