"""Tests for the Figure 2 layout inspector."""

from __future__ import annotations

import pytest

from repro.cluster import load_derby
from repro.cluster.inspect import describe_derby_layout, describe_layout
from repro.derby import DerbyConfig
from repro.derby.config import Clustering
from repro.simtime import CostParams


def tiny(clustering) -> DerbyConfig:
    return DerbyConfig(
        n_providers=5,
        n_patients=50,
        clustering=clustering,
        scale=0.001,
        params=CostParams().scaled(0.001),
    )


class TestDescribeLayout:
    def test_class_layout_separates_files(self):
        derby = load_derby(tiny(Clustering.CLASS))
        text = describe_derby_layout(derby)
        assert "Physical organization: class" in text
        assert "providers file:" in text
        assert "patients file:" in text
        # Providers come with their clients sets rendered.
        assert "clients={" in text or "clients=<" in text

    def test_composition_layout_interleaves(self):
        derby = load_derby(tiny(Clustering.COMPOSITION))
        text = describe_derby_layout(derby, max_records=12)
        assert "objects file:" in text
        lines = [line for line in text.splitlines() if line.startswith("  @")]
        kinds = ["Provider" if "Provider" in line else "Patient" for line in lines]
        # A provider first, then its patients follow on the same file.
        assert kinds[0] == "Provider"
        assert "Patient" in kinds[1:]

    def test_patient_shows_back_reference(self):
        derby = load_derby(tiny(Clustering.CLASS))
        text = describe_derby_layout(derby, max_records=60)
        assert "primary_care_provider->@" in text

    def test_inspection_is_unaccounted(self):
        derby = load_derby(tiny(Clustering.CLASS))
        derby.start_cold_run()
        describe_derby_layout(derby)
        assert derby.db.clock.elapsed_s == 0.0
        assert derby.db.counters.disk_reads == 0

    def test_truncation_note(self):
        derby = load_derby(tiny(Clustering.CLASS))
        text = describe_layout(derby.db, ["patients"], max_records=3)
        assert "... 47 more" in text

    def test_unknown_file_raises(self):
        derby = load_derby(tiny(Clustering.CLASS))
        with pytest.raises(Exception):
            describe_layout(derby.db, ["ghost"])
