"""Tests for the OQL ``exists`` quantifier (navigational semijoin)."""

from __future__ import annotations

import pytest

from repro.cluster import load_derby
from repro.derby import DerbyConfig, generate
from repro.derby.config import Clustering
from repro.errors import OQLSyntaxError, PlanError
from repro.oql import Catalog, OQLEngine, parse, run_oql
from repro.oql.ast_nodes import ExistsExpr, Path
from repro.simtime import CostParams


@pytest.fixture(scope="module")
def derby():
    cfg = DerbyConfig(
        n_providers=25,
        n_patients=500,
        clustering=Clustering.CLASS,
        scale=0.002,
        params=CostParams().scaled(0.002),
    )
    return load_derby(cfg)


@pytest.fixture(scope="module")
def catalog(derby):
    return Catalog.from_derby(derby)


@pytest.fixture(scope="module")
def logical(derby):
    return generate(derby.config)


class TestExistsParsing:
    def test_basic(self):
        q = parse(
            "select p.name from p in Providers "
            "where exists pa in p.clients : pa.mrn < 100"
        )
        assert isinstance(q.where, ExistsExpr)
        assert q.where.var == "pa"
        assert q.where.source == Path("p", ("clients",))

    def test_conjoined_with_plain_predicate(self):
        q = parse(
            "select p.name from p in Providers "
            "where p.upin < 5 and exists pa in p.clients : pa.age > 90"
        )
        terms = q.where.operands
        assert any(isinstance(t, ExistsExpr) for t in terms)

    def test_requires_set_attribute(self):
        with pytest.raises(OQLSyntaxError):
            parse("select p.name from p in Providers "
                  "where exists pa in Patients : pa.mrn < 5")

    def test_requires_colon(self):
        with pytest.raises(OQLSyntaxError):
            parse("select p.name from p in Providers "
                  "where exists pa in p.clients pa.mrn < 5")


class TestExistsExecution:
    def test_matches_reference(self, derby, catalog, logical):
        derby.start_cold_run()
        k = derby.config.mrn_threshold(5)
        rows = run_oql(
            catalog,
            "select p.name from p in Providers "
            f"where exists pa in p.clients : pa.mrn < {k}",
        )
        expected = sorted(
            prov.name
            for prov in logical.providers
            if any(logical.patients[j].mrn < k for j in prov.patient_idxs)
        )
        assert sorted(rows) == expected

    def test_combined_with_sargable_predicate(self, derby, catalog, logical):
        derby.start_cold_run()
        k2 = derby.config.upin_threshold(50)
        rows = run_oql(
            catalog,
            f"select p.name from p in Providers where p.upin < {k2} "
            "and exists pa in p.clients : pa.age > 95",
        )
        expected = sorted(
            prov.name
            for prov in logical.providers
            if prov.upin < k2
            and any(logical.patients[j].age > 95 for j in prov.patient_idxs)
        )
        assert sorted(rows) == expected

    def test_exists_nobody_matches(self, derby, catalog):
        derby.start_cold_run()
        rows = run_oql(
            catalog,
            "select p.name from p in Providers "
            "where exists pa in p.clients : pa.age > 1000",
        )
        assert rows == []

    def test_count_with_exists(self, derby, catalog, logical):
        derby.start_cold_run()
        (n,) = run_oql(
            catalog,
            "select count(p) from p in Providers "
            "where exists pa in p.clients : pa.age < 3",
        )
        expected = sum(
            1
            for prov in logical.providers
            if any(logical.patients[j].age < 3 for j in prov.patient_idxs)
        )
        assert n == expected

    def test_exists_charges_navigation(self, derby, catalog):
        derby.start_cold_run()
        run_oql(
            catalog,
            "select p.name from p in Providers "
            "where exists pa in p.clients : pa.age > 50",
        )
        assert derby.db.counters.handles_allocated > 25  # children visited

    def test_exists_over_wrong_variable_rejected(self, catalog):
        with pytest.raises(PlanError):
            OQLEngine(catalog).plan(
                "select p.name from p in Providers "
                "where exists pa in q.clients : pa.mrn < 5"
            )
