"""Small-surface coverage: table formatting, units, error hierarchy,
exports with custom axes."""

from __future__ import annotations

import pytest

from repro import errors
from repro.bench.report import Table, _fmt
from repro.simtime import MeterSnapshot
from repro.stats import StatsDatabase, to_gnuplot
from repro.units import KB, MB, PAGE_SIZE, bytes_for_pages, pages_for_bytes


class TestTableFormatting:
    def test_float_formats_by_magnitude(self):
        assert _fmt(0.0) == "0"
        assert _fmt(0.1234) == "0.1234"
        assert _fmt(1.234) == "1.23"
        assert _fmt(123.456) == "123.5"
        assert _fmt(-2.5) == "-2.50"

    def test_int_and_str_pass_through(self):
        assert _fmt(42) == "42"
        assert _fmt("NL") == "NL"

    def test_empty_table_renders(self):
        table = Table("Empty", ["a", "b"])
        text = table.render()
        assert "Empty" in text
        assert "a" in text and "b" in text


class TestUnits:
    def test_constants(self):
        assert KB == 1024
        assert MB == 1024 * KB
        assert PAGE_SIZE == 4 * KB

    def test_bytes_for_pages(self):
        assert bytes_for_pages(3) == 3 * PAGE_SIZE
        with pytest.raises(ValueError):
            bytes_for_pages(-1)

    def test_roundtrip(self):
        assert pages_for_bytes(bytes_for_pages(7)) == 7


class TestErrorHierarchy:
    def test_everything_is_a_repro_error(self):
        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception):
                assert issubclass(obj, errors.ReproError), name

    def test_storage_family(self):
        assert issubclass(errors.PageFullError, errors.StorageError)
        assert issubclass(errors.RecordNotFoundError, errors.StorageError)
        assert issubclass(errors.RecordTooLargeError, errors.StorageError)

    def test_query_family(self):
        assert issubclass(errors.OQLSyntaxError, errors.QueryError)
        assert issubclass(errors.PlanError, errors.QueryError)

    def test_txn_family(self):
        assert issubclass(errors.TransactionMemoryError, errors.TransactionError)
        assert issubclass(errors.LockConflictError, errors.TransactionError)

    def test_catchability(self):
        """Library failures are catchable without swallowing built-ins."""
        with pytest.raises(errors.ReproError):
            raise errors.DuplicateIndexError("x")
        assert not issubclass(errors.IndexError_, IndexError)


class TestGnuplotAxes:
    def test_custom_axes(self):
        stats = StatsDatabase()
        for pages, seconds in ((10, 1.0), (20, 2.0)):
            stats.record_experiment(
                algo="A",
                cluster="c",
                elapsed_s=seconds,
                meters=MeterSnapshot(disk_reads=pages),
            )
        dat = to_gnuplot(stats.rows(), x="d2sc_pages", y="elapsed_s")
        assert "10 1" in dat
        assert "20 2" in dat
