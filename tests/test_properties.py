"""Cross-module property-based tests (hypothesis)."""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.buffer import BufferCache, ClientServerSystem
from repro.derby.lrand48 import Lrand48
from repro.exec.sorter import sort_charged
from repro.objects import AttributeDef, AttrKind, Database, Schema
from repro.objects.codec import InlineSet, RecordCodec
from repro.objects.header import ObjectHeader
from repro.simtime import Bucket, CostParams, MemoryModel, SimClock
from repro.storage import DiskManager, Rid
from repro.units import PAGE_SIZE


# ------------------------------------------------------------- buffer

class TestBufferModel:
    @given(
        accesses=st.lists(
            st.integers(min_value=0, max_value=19), min_size=1, max_size=300
        ),
        cache_pages=st.integers(min_value=1, max_value=25),
    )
    @settings(max_examples=50, deadline=None)
    def test_lru_matches_reference_model(self, accesses, cache_pages):
        """The two-tier system with an over-sized server cache must show
        exactly the client-LRU miss sequence of a textbook model."""
        disk = DiskManager()
        fid = disk.create_file()
        for __ in range(20):
            disk.allocate_page(fid)
        memory = MemoryModel(
            ram_bytes=1000 * PAGE_SIZE,
            server_cache_bytes=40 * PAGE_SIZE,   # big: absorbs everything
            client_cache_bytes=cache_pages * PAGE_SIZE,
            system_reserved_bytes=0,
        )
        system = ClientServerSystem(disk, memory)

        # Reference LRU model.
        reference_misses = 0
        lru: list[int] = []
        for page_no in accesses:
            if page_no in lru:
                lru.remove(page_no)
            else:
                reference_misses += 1
                if len(lru) >= cache_pages:
                    lru.pop(0)
            lru.append(page_no)

        for page_no in accesses:
            system.get_page(fid, page_no)
        assert disk.counters.client_faults == reference_misses

    @given(
        st.lists(st.integers(min_value=0, max_value=30), min_size=1, max_size=200)
    )
    @settings(max_examples=30, deadline=None)
    def test_cache_never_exceeds_capacity(self, accesses):
        cache = BufferCache(7)
        from repro.storage.page import Page

        pages = {no: Page(0, no) for no in set(accesses)}
        for no in accesses:
            cache.insert(pages[no])
            assert len(cache) <= 7


# ------------------------------------------------------------- codec

_VALUE_STRATEGY = st.fixed_dictionaries(
    {
        "name": st.text(
            alphabet=st.characters(min_codepoint=32, max_codepoint=126),
            max_size=16,
        ),
        "mrn": st.integers(min_value=-(2**31), max_value=2**31 - 1),
        "score": st.floats(allow_nan=False, allow_infinity=False, width=32),
        "flag": st.booleans(),
        "friends": st.lists(
            st.builds(
                Rid,
                st.integers(min_value=0, max_value=100),
                st.integers(min_value=0, max_value=10_000),
                st.integers(min_value=0, max_value=100),
            ),
            max_size=20,
        ),
    }
)


class TestCodecProperties:
    def make_codec(self):
        schema = Schema()
        cls = schema.define(
            "Fuzz",
            [
                AttributeDef("name", AttrKind.STRING),
                AttributeDef("mrn", AttrKind.INT32),
                AttributeDef("score", AttrKind.REAL64),
                AttributeDef("flag", AttrKind.BOOL),
                AttributeDef("friends", AttrKind.REF_SET),
            ],
        )
        return RecordCodec(cls), cls

    @given(values=_VALUE_STRATEGY, indexed=st.booleans())
    @settings(max_examples=100)
    def test_roundtrip(self, values, indexed):
        codec, cls = self.make_codec()
        header = ObjectHeader.for_new_object(cls.class_id, indexed)
        encoded = dict(values, friends=InlineSet(tuple(values["friends"])))
        record = codec.encode(header, encoded)
        decoded = codec.decode(record)
        assert decoded["mrn"] == values["mrn"]
        assert decoded["flag"] == values["flag"]
        assert decoded["score"] == pytest.approx(values["score"], rel=1e-6)
        assert decoded["friends"].rids == tuple(values["friends"])
        assert decoded["name"] == values["name"].encode("utf-8")[:16].rstrip(
            b"\x00"
        ).decode("utf-8", "replace")

    @given(values=_VALUE_STRATEGY)
    @settings(max_examples=50)
    def test_single_attr_equals_full_decode(self, values):
        codec, cls = self.make_codec()
        header = ObjectHeader.for_new_object(cls.class_id, True)
        encoded = dict(values, friends=InlineSet(tuple(values["friends"])))
        record = codec.encode(header, encoded)
        full = codec.decode(record)
        for attr in ("name", "mrn", "score", "flag", "friends"):
            assert codec.decode_attr(record, attr) == full[attr]


# ------------------------------------------------------------- collections

class TestCollectionProperties:
    @given(n=st.integers(min_value=0, max_value=1300))
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.data_too_large])
    def test_roundtrip_across_chunk_boundaries(self, n):
        schema = Schema()
        schema.define("T", [AttributeDef("x", AttrKind.INT32)])
        db = Database(schema)
        db.create_file("t")
        coll = db.new_collection()
        rids = [db.create_object("T", {"x": i}, "t") for i in range(n)]
        coll.extend(rids)
        assert list(coll.iter_rids()) == rids
        assert len(coll) == n


# ------------------------------------------------------------- clock / sort

class TestClockProperties:
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(list(Bucket)),
                st.floats(min_value=0, max_value=1e6),
            ),
            max_size=50,
        )
    )
    @settings(max_examples=50)
    def test_elapsed_is_sum_of_buckets(self, charges):
        clock = SimClock()
        for bucket, us in charges:
            clock.charge_us(bucket, us)
        assert clock.elapsed_s == pytest.approx(
            sum(clock.breakdown().values())
        )
        assert clock.elapsed_s >= 0

    def test_negative_charge_rejected(self):
        clock = SimClock()
        with pytest.raises(ValueError):
            clock.charge_ms(Bucket.IO, -1)

    @given(st.lists(st.integers(), max_size=200))
    @settings(max_examples=50)
    def test_sort_charged_sorts_and_charges(self, items):
        clock = SimClock()
        result = sort_charged(list(items), clock, CostParams())
        assert result == sorted(items)
        if len(items) > 1:
            assert clock.bucket_s(Bucket.SORT) > 0


# ------------------------------------------------------------- lrand48

class TestLrand48Properties:
    @given(st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=30)
    def test_matches_direct_lcg(self, seed):
        rng = Lrand48(seed)
        x = (((seed & 0xFFFFFFFF) << 16) | 0x330E) & ((1 << 48) - 1)
        for __ in range(5):
            x = (0x5DEECE66D * x + 0xB) & ((1 << 48) - 1)
            assert rng.lrand48() == x >> 17


# ------------------------------------------------------------- joins

class TestJoinEquivalenceProperty:
    @given(
        n_providers=st.integers(min_value=2, max_value=12),
        n_patients=st.integers(min_value=4, max_value=120),
        sel_pat=st.integers(min_value=1, max_value=100),
        sel_prov=st.integers(min_value=1, max_value=100),
        seed=st.integers(min_value=0, max_value=9999),
    )
    @settings(max_examples=12, deadline=None)
    def test_all_algorithms_agree(
        self, n_providers, n_patients, sel_pat, sel_prov, seed
    ):
        """On arbitrary tiny databases, all six algorithms return the
        same multiset of rows."""
        from repro.cluster import load_derby
        from repro.derby import DerbyConfig
        from repro.derby.config import Clustering
        from repro.exec import ALGORITHMS, TreeJoinQuery

        clustering = random.Random(seed).choice(list(Clustering))
        config = DerbyConfig(
            n_providers=n_providers,
            n_patients=n_patients,
            clustering=clustering,
            seed=seed,
            scale=0.001,
            params=CostParams().scaled(0.001),
        )
        derby = load_derby(config)
        query = TreeJoinQuery(
            db=derby.db,
            parent_index=derby.by_upin,
            child_index=derby.by_mrn,
            parent_high=config.upin_threshold(sel_prov),
            child_high=config.mrn_threshold(sel_pat),
            n_parents=n_providers,
        )
        results = {}
        for name, algo in ALGORITHMS.items():
            derby.start_cold_run()
            results[name] = sorted(algo(query))
        baseline = results.pop("PHJ")
        for name, rows in results.items():
            assert rows == baseline, f"{name} disagrees with PHJ"
