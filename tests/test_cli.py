"""Tests for the command-line interface."""

from __future__ import annotations

import io

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_figures_choices(self):
        args = build_parser().parse_args(["figures", "fig10"])
        assert args.figure == "fig10"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figures", "fig99"])

    def test_db_options(self):
        args = build_parser().parse_args(
            ["load", "--db", "1to3", "--clustering", "composition",
             "--scale", "0.001"]
        )
        assert args.db == "1to3"
        assert args.clustering == "composition"
        assert args.scale == 0.001


class TestCommands:
    def test_info(self, capsys):
        assert main(["info", "--scale", "0.01"]) == 0
        out = capsys.readouterr().out
        assert "page read          : 10.0 ms" in out
        assert "query memory" in out

    def test_figures_fig10(self, capsys):
        assert main(["figures", "fig10"]) == 0
        out = capsys.readouterr().out
        assert "Figure 10" in out
        assert "57.60" in out

    def test_load(self, capsys):
        assert main(
            ["load", "--db", "1to3", "--scale", "0.0005"]
        ) == 0
        out = capsys.readouterr().out
        assert "load time" in out
        assert "500 providers" in out

    def test_figures_fig07_small_scale(self, capsys):
        assert main(["figures", "fig07", "--scale", "0.002"]) == 0
        out = capsys.readouterr().out
        assert "Figure 7" in out

    def test_shell_quits(self, capsys, monkeypatch):
        inputs = iter([
            "select count(p) from p in Patients where p.mrn < 100",
            "select bogus syntax here",
            "quit",
        ])
        monkeypatch.setattr("builtins.input", lambda prompt="": next(inputs))
        assert main(["shell", "--scale", "0.001"]) == 0
        out = capsys.readouterr().out
        assert "-- plan:" in out
        assert "error:" in out

    def test_shell_eof(self, capsys, monkeypatch):
        def raise_eof(prompt=""):
            raise EOFError

        monkeypatch.setattr("builtins.input", raise_eof)
        assert main(["shell", "--scale", "0.001"]) == 0

    def test_layout(self, capsys):
        assert main(
            ["layout", "--scale", "0.001", "--clustering", "composition",
             "--records", "5"]
        ) == 0
        out = capsys.readouterr().out
        assert "Physical organization: composition" in out
        assert "@" in out

    def test_analyze(self, capsys):
        assert main(["analyze", "--db", "1to3", "--scale", "0.001"]) == 0
        out = capsys.readouterr().out
        assert "analyzed Patients" in out
        assert "analyzed Providers.clients" in out
        assert "simulated s" in out
        assert "persisted" in out

    def test_analyze_named_collection(self, capsys):
        assert main(
            ["analyze", "--db", "1to3", "--scale", "0.001", "Providers"]
        ) == 0
        out = capsys.readouterr().out
        assert "analyzed Providers" in out
        assert "analyzed Patients" not in out

    def test_analyze_unknown_collection(self, capsys):
        assert main(
            ["analyze", "--db", "1to3", "--scale", "0.001", "Bogus"]
        ) == 2
        err = capsys.readouterr().err
        assert "error:" in err

    def test_calibrate(self, capsys):
        assert main(["calibrate", "--db", "1to3", "--scale", "0.001"]) == 0
        out = capsys.readouterr().out
        assert "cost model fitted" in out
        assert "optimizer: picked the measured winner" in out

    def test_shell_cost_optimizer(self, capsys, monkeypatch):
        inputs = iter([
            "analyze",
            "explain select count(p) from p in Patients where p.num < 500",
            "quit",
        ])
        monkeypatch.setattr("builtins.input", lambda prompt="": next(inputs))
        assert main(["shell", "--scale", "0.001", "--optimizer", "cost"]) == 0
        out = capsys.readouterr().out
        assert "analyzed Patients" in out
        assert "<- chosen" in out
