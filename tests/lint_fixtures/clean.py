"""Fixture: no violations at all."""

from random import Random


def shuffled(items: list, seed: int) -> list:
    rng = Random(seed)
    out = list(items)
    rng.shuffle(out)
    return out


def ordered(names: set) -> list:
    return sorted(names)
