"""ESCAPE fixtures: borrowed handles leaking out of their with block."""


def returns_handle(om, rid):
    with om.borrow(rid) as handle:
        return handle                      # line 6 -> ESCAPE


def yields_handles(om, rids):
    for rid in rids:
        with om.borrow(rid) as handle:
            yield handle                   # line 12 -> ESCAPE


class Cache:
    def stash(self, om, rid):
        with om.borrow(rid) as handle:
            self.kept = handle             # line 18 -> ESCAPE


def collects_handles(om, rids, out):
    for rid in rids:
        with om.borrow(rid) as handle:
            out.append(handle)             # line 24 -> ESCAPE


def uses_after_block(om, rid):
    with om.borrow(rid) as handle:
        pass
    return handle.value                    # line 30 -> ESCAPE
