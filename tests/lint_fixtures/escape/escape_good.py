"""ESCAPE fixtures: handles consumed while still pinned."""


def derives_value(om, rid):
    with om.borrow(rid) as handle:
        return om.get_attr(handle, "name")  # derived value, handle consumed


def collects_derived(om, rids, out):
    for rid in rids:
        with om.borrow(rid) as handle:
            out.append(om.get_attr(handle, "name"))


def accumulates(om, rids):
    total = 0
    for rid in rids:
        with om.borrow(rid) as handle:
            total += om.get_attr(handle, "size")
    return total
