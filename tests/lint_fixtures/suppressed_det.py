"""Fixture: a DET violation silenced by an inline suppression."""

import time


def stamp() -> float:
    return time.time()  # simlint: ok[DET] fixture: suppression on the finding line


def stamp_above() -> float:
    # simlint: ok[DET] fixture: suppression on the line above
    return time.time()
