"""PROTO fixtures: transaction lifecycle violations."""


def leaks_on_branch(txm, flag):
    txn = txm.begin()                      # line 5: open on the else path -> PROTO
    if flag:
        txn.commit()


def leaks_in_loop(txm, items):
    txn = txm.begin()                      # line 11: open after the loop -> PROTO
    for item in items:
        if item.bad:
            txn.abort()
            return
    # fell through without commit


def exception_leak(txm, db):
    txn = txm.begin()                      # line 20: db.poke() may raise -> PROTO
    db.poke()
    txn.commit()


def double_completion(txm):
    txn = txm.begin()
    txn.commit()
    txn.commit()                           # line 28: second completion -> PROTO
