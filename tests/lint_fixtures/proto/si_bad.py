"""PROTO fixtures: snapshot-isolation transactions leaking snapshots."""


def si_leak_on_branch(txm, flag):
    txn = txm.begin(isolation="si")        # line 5: open else path pins the GC horizon -> PROTO
    if flag:
        txn.commit()


def si_reader_never_completes(txm, rids):
    txn = txm.begin(isolation="si")        # line 11: read-only, never commits -> PROTO
    out = []
    for rid in rids:
        out.append(txn.read_attr(rid, "x"))
    return out
