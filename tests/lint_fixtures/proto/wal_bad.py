"""PROTO fixtures: WAL force-rule violations."""


def commit_record_not_forced(wal, tid):
    wal.append(tid, "commit")              # line 5: never flushed -> PROTO
    return tid


def releases_before_force(wal, locks, tid):
    wal.append(tid, "commit")
    locks.release_all(tid)                 # line 11: locks gone, record volatile -> PROTO
    wal.flush()
