"""PROTO fixtures: presumed-abort 2PC, done right."""


def commit_with_decision(cluster, branches):
    for branch in branches:
        branch.prepare()
    cluster.decision_log.append("commit")  # the decision IS this record
    cluster.decision_log.flush()
    for branch in branches:
        branch.commit()


def recovery_resolution(cluster):
    cluster.restart(resolve_in_doubt=True)  # recovery owns in-doubt txns
