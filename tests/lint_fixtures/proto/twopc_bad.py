"""PROTO fixtures: 2PC decision-log discipline violations."""


def commit_without_decision(branches):
    for branch in branches:
        branch.prepare()                   # line 6: prepare round
    for branch in branches:
        branch.commit()                    # line 8: no decision-log write -> PROTO


def callback_commit_without_decision(cluster, branch):
    branch.prepare()
    cluster.call_soon(branch.commit)       # line 13: commit handed out, undecided -> PROTO


def ad_hoc_resolution(coordinator, gid):
    coordinator.decide(gid, resolve_in_doubt="commit")   # line 17 -> PROTO
