"""PROTO fixtures: the WAL force rule, observed."""


def forced_commit(wal, locks, tid):
    wal.append(tid, "commit")
    wal.flush()                            # force write before visibility
    locks.release_all(tid)


def unforced_kind(wal, tid):
    wal.append(tid, "update")              # updates need no eager force
