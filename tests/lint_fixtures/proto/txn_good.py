"""PROTO fixtures: well-bracketed transaction lifecycles."""


def bracketed(session, db):
    with session.transaction():
        db.poke()


def try_completes(txm, db):
    txn = txm.begin()
    try:
        db.poke()
        txn.commit()
    except RuntimeError:
        txn.abort()


def state_tested_retry(txm, db):
    for _attempt in range(3):
        txn = txm.begin()
        try:
            db.poke()
            txn.commit()
            return
        except RuntimeError:
            if txn.state == "active":
                txn.abort()


def ownership_transfer(txm):
    txn = txm.begin()
    return txn                             # caller now owns the lifecycle
