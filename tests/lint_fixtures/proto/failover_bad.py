"""PROTO fixtures: unfenced failover promotions."""


def promote_without_fence(cluster, shard_id, replica):
    cluster.route.rewrite(shard_id, replica, 1)      # line 5: no fence -> PROTO


def promote_with_volatile_fence(cluster, shard_id, replica, epoch):
    cluster.decision_log.append(0, "epoch", 24)
    cluster.route.rewrite(shard_id, replica, epoch)  # line 10: never flushed -> PROTO


def fence_after_the_fact(cluster, shard_id, replica, epoch):
    cluster.route.rewrite(shard_id, replica, epoch)  # line 14: fence too late -> PROTO
    cluster.decision_log.append(0, "epoch", 24)
    cluster.decision_log.flush()
