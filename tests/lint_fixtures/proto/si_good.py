"""PROTO fixtures: well-bracketed snapshot-isolation transactions."""


def si_try_completes(txm, db):
    txn = txm.begin(isolation="si")
    try:
        db.poke()
        txn.commit()
    except RuntimeError:
        txn.abort()


def si_state_tested_retry(txm, db):
    for _attempt in range(3):
        txn = txm.begin(isolation="si")
        try:
            db.poke()
            txn.commit()
            return
        except RuntimeError:
            if txn.state == "active":
                txn.abort()
