"""PROTO fixtures: fenced failover, done right."""


def promote_with_durable_fence(cluster, shard_id, replica, epoch):
    cluster.decision_log.append(0, "epoch", 24)
    cluster.decision_log.flush()  # the fence is durable before anything moves
    cluster.route.rewrite(shard_id, replica, epoch)


def rewrite_unrelated_to_promotion(text):
    # a same-named call with no promotion semantics, justified away
    return text.rewrite("a", "b")  # simlint: ok[PROTO] string rewriting, not routing
