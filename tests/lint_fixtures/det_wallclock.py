"""Fixture: exactly one DET violation — wall-clock time."""

import time


def stamp() -> float:
    return time.time()  # the violation
