"""Fixture: exactly one DET violation — iterating a set into output."""


def bucket_names(buckets: dict, earlier: dict) -> list:
    out = []
    for name in set(buckets) | set(earlier):  # the violation
        out.append(name)
    return out
