"""Fixture: exactly one CHARGE violation — a page touch with no charge."""


def uncharged_read(disk, file_id: int, page_no: int):
    return disk.read_page(file_id, page_no)  # touches, never charges


def charged_read(disk, clock, bucket, ms, file_id: int, page_no: int):
    clock.charge_ms(bucket, ms)
    return disk.read_page(file_id, page_no)


def _private_helper(disk, file_id: int, page_no: int):
    # private: the obligation belongs to public callers
    return disk.read_page(file_id, page_no)
