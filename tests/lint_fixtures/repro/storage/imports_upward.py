"""Fixture: exactly one LAYER violation — storage importing exec."""

from repro.exec.joins import hash_parents_join  # the violation


def delegate(q):
    return hash_parents_join(q)
