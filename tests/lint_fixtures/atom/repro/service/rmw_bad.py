"""ATOM fixtures: cross-yield read-modify-write on shared state."""


class Gate:
    def lost_update(self, sid):
        count = self.admissions            # read of shared state
        self.scheduler.yield_point()       # another session runs here
        self.admissions = count + 1        # line 8: stale write -> ATOM

    def check_then_act(self, sid):
        depth = len(self._queue)           # read of shared state
        self.locks.acquire(sid, "w")
        if depth < 4:
            self._queue.append(sid)        # line 14: guarded by acquire -> ok

    def check_then_append(self, sid):
        depth = len(self._queue)           # read of shared state
        self.scheduler.wait_for_admission(sid)
        if depth < 4:
            self._queue.append(sid)        # line 20: stale append -> ATOM

    def aug_with_yielding_rhs(self):
        self.admissions += self.pool.get_page(0)   # line 23: RMW spans a fault -> ATOM
