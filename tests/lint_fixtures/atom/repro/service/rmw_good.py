"""ATOM fixtures: the same shapes, correctly bracketed."""


class Gate:
    def bracketed(self, sid):
        with self._cv:
            count = self.admissions
            self.scheduler.yield_point()
            self.admissions = count + 1    # inside the critical bracket

    def locked_first(self, sid):
        self.locks.acquire(sid, "w")       # strict-2PL: lock owns the record
        count = self.admissions
        self.scheduler.yield_point()
        self.admissions = count + 1

    def no_yield_between(self, sid):
        count = self.admissions
        self.admissions = count + 1        # no suspension point in between
        self.scheduler.yield_point()

    def fresh_read_after_yield(self, sid):
        self.scheduler.yield_point()
        self.admissions += 1               # augmented RMW is one statement
