"""Fixture: exactly one EXC violation — a swallowing broad except."""


def try_decode(record: bytes) -> str:
    try:
        return record.decode("utf-8")
    except Exception:  # the violation: no re-raise
        return "?"


def cleanup_then_reraise(resource):
    try:
        return resource.use()
    except BaseException:  # fine: re-raises
        resource.cancel()
        raise
