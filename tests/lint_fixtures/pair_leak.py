"""Fixture: exactly one PAIR violation — load/unref not exception-safe."""


def read_attr(om, rid, attr):
    handle = om.load(rid)  # the violation: get_attr below can raise
    value = om.get_attr(handle, attr)
    om.unref(handle)
    return value


def read_attr_safely(om, rid, attr):
    handle = om.load(rid)
    try:
        return om.get_attr(handle, attr)
    finally:
        om.unref(handle)
