"""Tests for the OQL front end: lexer, parser, optimizer, engine."""

from __future__ import annotations

import pytest

from repro.cluster import load_derby
from repro.derby import DerbyConfig, generate
from repro.derby.config import Clustering
from repro.errors import OQLSyntaxError, PlanError
from repro.oql import (
    BinOp,
    BoolOp,
    Catalog,
    Literal,
    OQLEngine,
    Path,
    TupleExpr,
    parse,
    run_oql,
    tokenize,
)
from repro.oql.optimizer import SelectionPlan, TreeJoinPlan
from repro.simtime import CostParams


# ------------------------------------------------------------- lexer

class TestLexer:
    def test_tokens(self):
        tokens = tokenize("select p.age from p in Patients where p.num > 5")
        kinds = [t.kind for t in tokens]
        assert kinds == [
            "kw", "ident", "op", "ident", "kw", "ident", "kw", "ident",
            "kw", "ident", "op", "ident", "op", "int", "eof",
        ]

    def test_keywords_case_insensitive(self):
        tokens = tokenize("SELECT x FROM y IN Z")
        assert tokens[0].is_kw("select")
        assert tokens[2].is_kw("from")

    def test_two_char_ops(self):
        tokens = tokenize("a <= b >= c != d")
        ops = [t.text for t in tokens if t.kind == "op"]
        assert ops == ["<=", ">=", "!="]

    def test_string_literals(self):
        tokens = tokenize("select x from x in C where x.name = 'Tintin'")
        assert any(t.kind == "string" and t.text == "Tintin" for t in tokens)

    def test_unterminated_string(self):
        with pytest.raises(OQLSyntaxError):
            tokenize("'oops")

    def test_junk_character(self):
        with pytest.raises(OQLSyntaxError):
            tokenize("select %")

    def test_underscored_numbers(self):
        tokens = tokenize("1_800_000")
        assert tokens[0].kind == "int"


# ------------------------------------------------------------- parser

class TestParser:
    def test_simple_selection(self):
        q = parse("select p.age from p in Patients where p.num > 5")
        assert q.select == Path("p", ("age",))
        assert q.from_clauses[0].var == "p"
        assert q.where == BinOp(">", Path("p", ("num",)), Literal(5))

    def test_tree_query(self):
        q = parse(
            "select tuple(n: p.name, a: pa.age) "
            "from p in Providers, pa in p.clients "
            "where pa.mrn < 100 and p.upin < 10"
        )
        assert isinstance(q.select, TupleExpr)
        assert q.select.fields[0] == ("n", Path("p", ("name",)))
        assert len(q.from_clauses) == 2
        assert q.from_clauses[1].source == Path("p", ("clients",))
        assert isinstance(q.where, BoolOp)
        assert q.where.op == "and"

    def test_list_projection_autonames(self):
        q = parse("select [p.name, pa.age] from p in P, pa in p.cs")
        assert isinstance(q.select, TupleExpr)
        assert [f[0] for f in q.select.fields] == ["col0", "col1"]

    def test_distinct(self):
        q = parse("select distinct p.age from p in Patients")
        assert q.distinct

    def test_parentheses_and_or(self):
        q = parse("select p.a from p in C where (p.x < 1 or p.y > 2) and p.z = 3")
        assert isinstance(q.where, BoolOp) and q.where.op == "and"
        assert isinstance(q.where.operands[0], BoolOp)
        assert q.where.operands[0].op == "or"

    def test_not(self):
        q = parse("select p.a from p in C where not p.x < 1")
        assert isinstance(q.where, BoolOp) and q.where.op == "not"

    def test_missing_from(self):
        with pytest.raises(OQLSyntaxError):
            parse("select p.age where p.num > 5")

    def test_trailing_garbage(self):
        with pytest.raises(OQLSyntaxError):
            parse("select p.a from p in C extra")

    def test_float_literal(self):
        q = parse("select p.a from p in C where p.x < 1.5")
        assert q.where.right == Literal(1.5)


# ------------------------------------------------------------- fixtures

@pytest.fixture(scope="module")
def derby():
    cfg = DerbyConfig(
        n_providers=40,
        n_patients=1200,
        clustering=Clustering.CLASS,
        scale=0.002,
        params=CostParams().scaled(0.002),
    )
    return load_derby(cfg)


@pytest.fixture(scope="module")
def comp_derby():
    cfg = DerbyConfig(
        n_providers=40,
        n_patients=1200,
        clustering=Clustering.COMPOSITION,
        scale=0.002,
        params=CostParams().scaled(0.002),
    )
    return load_derby(cfg)


@pytest.fixture(scope="module")
def catalog(derby):
    return Catalog.from_derby(derby)


@pytest.fixture(scope="module")
def logical(derby):
    return generate(derby.config)


# ------------------------------------------------------------- optimizer

class TestOptimizer:
    def test_selection_uses_sorted_index(self, derby, catalog):
        """Section 4.2's discovery: the *sorted* unclustered index scan
        is the plan of choice, and strictly beats the unsorted index
        scan at any selectivity."""
        engine = OQLEngine(catalog)
        k = derby.config.num_threshold(30)
        plan = engine.plan(f"select p.age from p in Patients where p.num > {k}")
        assert isinstance(plan, SelectionPlan)
        assert plan.index is not None
        assert plan.sorted_rids
        assert plan.alternatives["sorted-index"].seconds < (
            plan.alternatives["scan"].seconds
        )
        assert plan.alternatives["sorted-index"].seconds < (
            plan.alternatives["index"].seconds
        )

    def test_selection_without_index_scans(self, catalog):
        engine = OQLEngine(catalog)
        plan = engine.plan("select p.name from p in Patients where p.age < 30")
        assert isinstance(plan, SelectionPlan)
        assert plan.index is None

    def test_tree_plan_costs_all_four(self, derby, catalog):
        engine = OQLEngine(catalog)
        k1 = derby.config.mrn_threshold(10)
        k2 = derby.config.upin_threshold(10)
        plan = engine.plan(
            f"select tuple(n: p.name, a: pa.age) from p in Providers, "
            f"pa in p.clients where pa.mrn < {k1} and p.upin < {k2}"
        )
        assert isinstance(plan, TreeJoinPlan)
        assert set(plan.alternatives) == {"NL", "NOJOIN", "PHJ", "CHJ"}
        assert plan.algorithm in plan.alternatives

    def test_composition_prefers_navigation(self, comp_derby):
        """Figure 13: with composition clustering navigation wins."""
        catalog = Catalog.from_derby(comp_derby)
        engine = OQLEngine(catalog)
        k1 = comp_derby.config.mrn_threshold(10)
        k2 = comp_derby.config.upin_threshold(10)
        plan = engine.plan(
            f"select tuple(n: p.name, a: pa.age) from p in Providers, "
            f"pa in p.clients where pa.mrn < {k1} and p.upin < {k2}"
        )
        assert plan.algorithm in ("NL", "NOJOIN")

    def test_three_variables_rejected(self, catalog):
        with pytest.raises(PlanError):
            OQLEngine(catalog).plan(
                "select a.x from a in A, b in a.bs, c in b.cs"
            )

    def test_unknown_collection_rejected(self, catalog):
        with pytest.raises(PlanError):
            OQLEngine(catalog).plan("select p.age from p in Ghosts")

    def test_tree_join_needs_both_predicates(self, catalog):
        with pytest.raises(PlanError):
            OQLEngine(catalog).plan(
                "select tuple(n: p.name, a: pa.age) from p in Providers, "
                "pa in p.clients where pa.mrn < 10"
            )


# ------------------------------------------------------------- engine

class TestEngine:
    def test_selection_matches_reference(self, derby, catalog, logical):
        derby.start_cold_run()
        k = derby.config.num_threshold(20)
        rows = run_oql(
            catalog, f"select p.age from p in Patients where p.num > {k}"
        )
        expected = sorted(p.age for p in logical.patients if p.num > k)
        assert sorted(rows) == expected

    def test_selection_with_residual_predicate(self, derby, catalog, logical):
        derby.start_cold_run()
        k = derby.config.num_threshold(50)
        rows = run_oql(
            catalog,
            f"select p.age from p in Patients "
            f"where p.num > {k} and p.age < 40",
        )
        expected = sorted(
            p.age for p in logical.patients if p.num > k and p.age < 40
        )
        assert sorted(rows) == expected

    def test_full_scan_when_no_index(self, derby, catalog, logical):
        derby.start_cold_run()
        rows = run_oql(
            catalog, "select p.name from p in Patients where p.age >= 99"
        )
        expected = sorted(p.name for p in logical.patients if p.age >= 99)
        assert sorted(rows) == expected

    def test_multi_attribute_projection(self, derby, catalog, logical):
        derby.start_cold_run()
        rows = run_oql(
            catalog,
            "select tuple(n: p.name, a: p.age) from p in Patients "
            "where p.mrn <= 5",
        )
        expected = sorted(
            (p.name, p.age) for p in logical.patients if p.mrn <= 5
        )
        assert sorted(rows) == expected

    def test_tree_join_matches_reference(self, derby, catalog, logical):
        derby.start_cold_run()
        k1 = derby.config.mrn_threshold(30)
        k2 = derby.config.upin_threshold(50)
        rows = run_oql(
            catalog,
            f"select tuple(n: p.name, a: pa.age) from p in Providers, "
            f"pa in p.clients where pa.mrn < {k1} and p.upin < {k2}",
        )
        expected = sorted(
            (prov.name, logical.patients[j].age)
            for prov in logical.providers
            if prov.upin < k2
            for j in prov.patient_idxs
            if logical.patients[j].mrn < k1
        )
        assert sorted(rows) == expected

    def test_tree_join_child_first_projection(self, derby, catalog):
        derby.start_cold_run()
        k1 = derby.config.mrn_threshold(10)
        k2 = derby.config.upin_threshold(100)
        rows = run_oql(
            catalog,
            f"select tuple(a: pa.age, n: p.name) from p in Providers, "
            f"pa in p.clients where pa.mrn < {k1} and p.upin < {k2}",
        )
        assert all(isinstance(age, int) for age, __ in rows)

    def test_distinct(self, derby, catalog):
        derby.start_cold_run()
        rows = run_oql(
            catalog, "select distinct p.sex from p in Patients where p.mrn < 500"
        )
        assert sorted(rows) == ["F", "M"]

    def test_string_equality(self, derby, catalog, logical):
        derby.start_cold_run()
        name = logical.patients[0].name
        rows = run_oql(
            catalog,
            f"select p.mrn from p in Patients where p.name = '{name}'",
        )
        assert 1 in rows

    def test_execution_charges_simulated_time(self, derby, catalog):
        derby.start_cold_run()
        run_oql(catalog, "select p.age from p in Patients where p.mrn < 100")
        assert derby.db.clock.elapsed_s > 0
