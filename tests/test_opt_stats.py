"""Tests for the optimizer statistics subsystem (``repro.opt``).

Covers the equi-depth histogram (accuracy, bounds, edge cases), the
ANALYZE collector (contents, determinism, simulated-time charging,
sampling), persistence through the self-hosted stats database, and the
cardinality estimator's selectivity guarantees.
"""

from __future__ import annotations

import random

import pytest

from repro.cluster import load_derby
from repro.derby import DerbyConfig
from repro.derby.config import Clustering
from repro.opt import (
    CardinalityEstimator,
    EquiDepthHistogram,
    StatsCollector,
    load_table_stats,
    save_table_stats,
    selectivity_error_bound,
    summarize,
)
from repro.oql import Catalog
from repro.oql.optimizer import SargablePredicate
from repro.simtime import CostParams
from repro.stats import StatsDatabase


@pytest.fixture(scope="module")
def derby():
    config = DerbyConfig(
        n_providers=40,
        n_patients=1200,
        clustering=Clustering.CLASS,
        scale=0.002,
        params=CostParams().scaled(0.002),
    )
    return load_derby(config)


@pytest.fixture(scope="module")
def catalog(derby):
    return Catalog.from_derby(derby)


@pytest.fixture(scope="module")
def table_stats(catalog):
    return StatsCollector(catalog).collect()


class TestHistogram:
    def test_uniform_range_fractions(self):
        values = [float(v) for v in range(10_000)]
        hist = EquiDepthHistogram.build(values, buckets=40)
        bound = selectivity_error_bound(40)
        for frac in (0.1, 0.3, 0.5, 0.9):
            est = hist.fraction_le(frac * 10_000)
            assert abs(est - frac) <= bound

    def test_skewed_values_still_bounded(self):
        # Heavy skew: half the mass on one value, a long uniform tail.
        rng = random.Random(7)
        values = [5.0] * 5000 + [rng.uniform(0, 1000) for _ in range(5000)]
        hist = EquiDepthHistogram.build(values, buckets=40)
        bound = selectivity_error_bound(40)
        true_le_5 = sum(1 for v in values if v <= 5.0) / len(values)
        assert abs(hist.fraction_le(5.0) - true_le_5) <= bound
        true_le_500 = sum(1 for v in values if v <= 500.0) / len(values)
        assert abs(hist.fraction_le(500.0) - true_le_500) <= bound

    def test_eq_fraction_is_inverse_distinct(self):
        values = [float(v % 25) for v in range(1000)]
        hist = EquiDepthHistogram.build(values, buckets=10)
        assert hist.n_distinct == 25
        assert hist.eq_fraction() == pytest.approx(1.0 / 25)

    def test_bounds_clamp(self):
        hist = EquiDepthHistogram.build([float(v) for v in range(100)])
        assert hist.fraction_le(-1.0) == 0.0
        assert hist.fraction_le(1e9) == 1.0
        assert hist.selectivity(None, None) == pytest.approx(1.0)

    def test_empty(self):
        hist = EquiDepthHistogram.build([])
        assert hist.n == 0
        assert hist.fraction_le(3.0) == 0.0
        assert hist.selectivity(0.0, 10.0) == 0.0

    def test_selectivity_open_vs_closed(self):
        values = [float(v % 10) for v in range(1000)]
        hist = EquiDepthHistogram.build(values, buckets=10)
        closed = hist.selectivity(2.0, 5.0)
        open_low = hist.selectivity(2.0, 5.0, include_low=False)
        assert 0.0 <= open_low <= closed <= 1.0
        # Dropping the lower endpoint removes roughly one equality mass.
        assert closed - open_low == pytest.approx(hist.eq_fraction(), abs=0.05)

    def test_selectivity_never_escapes_unit_interval(self):
        rng = random.Random(11)
        values = [rng.gauss(0, 50) for _ in range(3000)]
        hist = EquiDepthHistogram.build(values, buckets=17)
        for _ in range(200):
            a, b = rng.uniform(-200, 200), rng.uniform(-200, 200)
            lo, hi = min(a, b), max(a, b)
            assert 0.0 <= hist.selectivity(lo, hi) <= 1.0


class TestCollector:
    def test_contents(self, catalog, table_stats):
        patients = table_stats.extent("Patients")
        providers = table_stats.extent("Providers")
        assert patients is not None and providers is not None
        assert patients.n_objects == catalog.collection_size("Patients")
        assert providers.n_objects == catalog.collection_size("Providers")
        assert patients.file_pages > 0
        for attr in ("mrn", "num", "age"):
            assert patients.attribute(attr) is not None

    def test_fanout(self, table_stats):
        fan = table_stats.fanout("Providers", "clients")
        assert fan is not None
        # 1200 patients over 40 providers.
        assert fan.avg_children == pytest.approx(30.0, rel=0.01)
        assert fan.max_children >= fan.avg_children
        assert fan.frac_with_children == pytest.approx(1.0)

    def test_deterministic(self, catalog, table_stats):
        again = StatsCollector(catalog).collect()
        assert again.extents == table_stats.extents
        assert again.fanouts == table_stats.fanouts

    def test_charges_simulated_time(self, derby, catalog):
        before = derby.db.clock.elapsed_s
        StatsCollector(catalog).collect(["Providers"])
        assert derby.db.clock.elapsed_s > before

    def test_sampling_caps_histogram(self, catalog):
        stats = StatsCollector(catalog, sample_limit=100).collect(["Patients"])
        extent = stats.extent("Patients")
        attr = extent.attribute("num")
        assert extent.sampled <= 100 < extent.n_objects
        # Distinct counts are scaled back to extent size, never beyond.
        assert attr.histogram.n_distinct <= extent.n_objects

    def test_unknown_collection_raises(self, catalog):
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            StatsCollector(catalog).collect(["Bogus"])

    def test_summarize_lines(self, table_stats):
        lines = summarize(table_stats)
        assert any(line.startswith("analyzed Patients:") for line in lines)
        assert any("fan-out" in line for line in lines)


class TestPersist:
    def test_round_trip(self, table_stats):
        db = StatsDatabase()
        n_rows = save_table_stats(db, table_stats)
        assert n_rows > 0
        loaded = load_table_stats(db)
        assert loaded.extents == table_stats.extents
        assert loaded.fanouts == table_stats.fanouts

    def test_save_replaces(self, table_stats):
        db = StatsDatabase()
        save_table_stats(db, table_stats)
        save_table_stats(db, table_stats)
        loaded = load_table_stats(db)
        assert loaded.extents == table_stats.extents


class TestEstimator:
    def test_selectivity_tracks_truth(self, derby, catalog, table_stats):
        est = CardinalityEstimator(catalog, table_stats)
        bound = selectivity_error_bound(40)
        for pct in (10, 30, 60, 90):
            threshold = derby.config.num_threshold(pct)
            pred = SargablePredicate("p", "num", ">", threshold)
            sel = est.selectivity("Patients", pred)
            assert abs(sel - pct / 100) <= bound + 0.02

    def test_conjunction_independence(self, catalog, table_stats):
        est = CardinalityEstimator(catalog, table_stats)
        p1 = SargablePredicate("p", "num", "<", 500_000)
        p2 = SargablePredicate("p", "age", "<", 40)
        combined = est.conjunct_selectivity("Patients", [p1, p2])
        product = est.selectivity("Patients", p1) * est.selectivity(
            "Patients", p2
        )
        assert combined == pytest.approx(product)

    def test_collection_rows(self, catalog, table_stats):
        est = CardinalityEstimator(catalog, table_stats)
        assert est.collection_rows("Patients") == catalog.collection_size(
            "Patients"
        )

    def test_fallback_without_stats(self, catalog):
        est = CardinalityEstimator(catalog)
        pred = SargablePredicate("p", "num", "<", 500_000)
        sel = est.selectivity("Patients", pred)
        assert 0.0 <= sel <= 1.0

    def test_install(self, catalog, table_stats):
        est = CardinalityEstimator(catalog)
        est.install(table_stats)
        assert est.stats is table_stats
