"""Unit tests for the class model, headers and record codec."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import IndexSlotOverflowError, SchemaError
from repro.objects.codec import (
    InlineSet,
    OverflowSet,
    RecordCodec,
    decode_rid,
    encode_rid,
)
from repro.objects.header import (
    FLAG_INDEXED,
    FLAG_PERSISTENT,
    INDEX_SLOT_BLOCK,
    ObjectHeader,
)
from repro.objects.model import AttrKind, AttributeDef, Schema
from repro.storage.rid import NIL_RID, Rid


def patient_schema() -> Schema:
    schema = Schema()
    schema.define(
        "Patient",
        [
            AttributeDef("name", AttrKind.STRING),
            AttributeDef("mrn", AttrKind.INT32),
            AttributeDef("age", AttrKind.INT32),
            AttributeDef("sex", AttrKind.CHAR),
            AttributeDef("primary_care_provider", AttrKind.REF, target="Provider"),
        ],
    )
    schema.define(
        "Provider",
        [
            AttributeDef("name", AttrKind.STRING),
            AttributeDef("upin", AttrKind.INT32),
            AttributeDef("clients", AttrKind.REF_SET, target="Patient"),
        ],
    )
    return schema


# ------------------------------------------------------------- model

class TestSchema:
    def test_define_and_lookup(self):
        schema = patient_schema()
        patient = schema.cls("Patient")
        assert patient.attribute("mrn").kind is AttrKind.INT32
        assert schema.by_id(patient.class_id) is patient

    def test_duplicate_class_rejected(self):
        schema = patient_schema()
        with pytest.raises(SchemaError):
            schema.define("Patient", [])

    def test_unknown_class_rejected(self):
        with pytest.raises(SchemaError):
            patient_schema().cls("Nurse")

    def test_unknown_attribute_rejected(self):
        schema = patient_schema()
        with pytest.raises(SchemaError):
            schema.cls("Patient").attribute("salary")

    def test_inheritance_prepends_attributes(self):
        schema = Schema()
        schema.define("Person", [AttributeDef("name", AttrKind.STRING)])
        child = schema.define(
            "Employee", [AttributeDef("salary", AttrKind.INT32)], superclass="Person"
        )
        assert [a.name for a in child.all_attributes()] == ["name", "salary"]
        assert child.is_subclass_of(schema.cls("Person"))
        assert not schema.cls("Person").is_subclass_of(child)

    def test_unknown_superclass(self):
        with pytest.raises(SchemaError):
            Schema().define("X", [], superclass="Ghost")

    def test_duplicate_attribute_rejected(self):
        with pytest.raises(SchemaError):
            Schema().define(
                "Bad",
                [
                    AttributeDef("x", AttrKind.INT32),
                    AttributeDef("x", AttrKind.CHAR),
                ],
            )

    def test_scalar_and_set_partition(self):
        provider = patient_schema().cls("Provider")
        assert [a.name for a in provider.scalar_attributes()] == ["name", "upin"]
        assert [a.name for a in provider.set_attributes()] == ["clients"]


# ------------------------------------------------------------- header

class TestObjectHeader:
    def test_new_unindexed_header_has_no_slots(self):
        header = ObjectHeader.for_new_object(3, in_indexed_collection=False)
        assert header.slot_count == 0
        assert header.size == 5
        assert not header.is_indexed
        assert header.is_persistent

    def test_new_indexed_header_reserves_a_block(self):
        header = ObjectHeader.for_new_object(3, in_indexed_collection=True)
        assert header.slot_count == INDEX_SLOT_BLOCK
        assert header.size == 5 + 2 * INDEX_SLOT_BLOCK
        assert header.is_indexed

    def test_encode_decode_roundtrip(self):
        header = ObjectHeader.for_new_object(7, True)
        header.add_index(42)
        decoded = ObjectHeader.decode(header.encode())
        assert decoded.class_id == 7
        assert decoded.index_ids == [42]
        assert decoded.slot_count == INDEX_SLOT_BLOCK

    def test_add_index_into_free_slot_does_not_grow(self):
        header = ObjectHeader.for_new_object(1, True)
        assert header.add_index(5) is False

    def test_add_index_without_slots_grows(self):
        header = ObjectHeader.for_new_object(1, False)
        assert header.add_index(5) is True
        assert header.slot_count == INDEX_SLOT_BLOCK

    def test_add_ninth_index_grows_again(self):
        header = ObjectHeader.for_new_object(1, True)
        for i in range(1, 9):
            assert header.add_index(i) is False
        assert header.add_index(9) is True
        assert header.slot_count == 2 * INDEX_SLOT_BLOCK

    def test_add_index_idempotent(self):
        header = ObjectHeader.for_new_object(1, True)
        header.add_index(5)
        assert header.add_index(5) is False
        assert header.index_ids == [5]

    def test_extension_can_be_forbidden(self):
        header = ObjectHeader.for_new_object(1, False)
        with pytest.raises(IndexSlotOverflowError):
            header.add_index(5, allow_extend=False)

    def test_remove_index_keeps_slots(self):
        header = ObjectHeader.for_new_object(1, True)
        header.add_index(5)
        header.remove_index(5)
        assert header.index_ids == []
        assert header.slot_count == INDEX_SLOT_BLOCK
        assert not header.is_indexed

    def test_peek_helpers(self):
        header = ObjectHeader.for_new_object(9, True)
        encoded = header.encode() + b"payload"
        assert ObjectHeader.peek_class_id(encoded) == 9
        assert ObjectHeader.peek_size(encoded) == header.size

    def test_flags_encoding(self):
        header = ObjectHeader(2, FLAG_PERSISTENT | FLAG_INDEXED, 8)
        decoded = ObjectHeader.decode(header.encode())
        assert decoded.is_persistent and decoded.is_indexed


# ------------------------------------------------------------- codec

class TestRidCodec:
    def test_roundtrip(self):
        rid = Rid(3, 123456, 17)
        assert decode_rid(encode_rid(rid)) == rid

    def test_nil_roundtrip(self):
        assert decode_rid(encode_rid(NIL_RID)) == NIL_RID

    @given(
        st.integers(min_value=0, max_value=32000),
        st.integers(min_value=0, max_value=2**31 - 1),
        st.integers(min_value=0, max_value=32000),
    )
    @settings(max_examples=100)
    def test_property_roundtrip(self, f, p, s):
        rid = Rid(f, p, s)
        assert decode_rid(encode_rid(rid)) == rid


class TestRecordCodec:
    def make(self, cls_name="Patient"):
        schema = patient_schema()
        return schema, RecordCodec(schema.cls(cls_name))

    def test_patient_roundtrip(self):
        schema, codec = self.make()
        header = ObjectHeader.for_new_object(schema.cls("Patient").class_id, True)
        provider_rid = Rid(0, 10, 2)
        record = codec.encode(
            header,
            {
                "name": "Daisy Duck",
                "mrn": 42,
                "age": 61,
                "sex": "F",
                "primary_care_provider": provider_rid,
            },
        )
        decoded = codec.decode(record)
        assert decoded == {
            "name": "Daisy Duck",
            "mrn": 42,
            "age": 61,
            "sex": "F",
            "primary_care_provider": provider_rid,
        }

    def test_decode_single_attr_matches_full_decode(self):
        schema, codec = self.make()
        header = ObjectHeader.for_new_object(schema.cls("Patient").class_id, False)
        record = codec.encode(
            header, {"name": "Obelix", "mrn": 7, "age": 30, "sex": "M"}
        )
        assert codec.decode_attr(record, "mrn") == 7
        assert codec.decode_attr(record, "name") == "Obelix"
        assert codec.decode_attr(record, "primary_care_provider") is None

    def test_attr_offsets_independent_of_header_size(self):
        schema, codec = self.make()
        slim = ObjectHeader.for_new_object(schema.cls("Patient").class_id, False)
        wide = ObjectHeader.for_new_object(schema.cls("Patient").class_id, True)
        values = {"name": "Tintin", "mrn": 99, "age": 15, "sex": "M"}
        for header in (slim, wide):
            record = codec.encode(header, values)
            assert codec.decode_attr(record, "mrn") == 99

    def test_string_truncated_to_width(self):
        schema, codec = self.make()
        header = ObjectHeader.for_new_object(schema.cls("Patient").class_id, False)
        record = codec.encode(header, {"name": "A" * 50, "mrn": 1})
        assert codec.decode_attr(record, "name") == "A" * 16

    def test_inline_set_roundtrip(self):
        schema, codec = self.make("Provider")
        header = ObjectHeader.for_new_object(schema.cls("Provider").class_id, False)
        clients = InlineSet((Rid(1, 0, 0), Rid(1, 0, 1), Rid(1, 0, 2)))
        record = codec.encode(
            header, {"name": "Asterix", "upin": 2, "clients": clients}
        )
        assert codec.decode_attr(record, "clients") == clients

    def test_overflow_set_roundtrip(self):
        schema, codec = self.make("Provider")
        header = ObjectHeader.for_new_object(schema.cls("Provider").class_id, False)
        spilled = OverflowSet(Rid(9, 4, 0), 1000)
        record = codec.encode(header, {"name": "X", "upin": 1, "clients": spilled})
        assert codec.decode_attr(record, "clients") == spilled

    def test_oversized_inline_set_rejected(self):
        schema, codec = self.make("Provider")
        header = ObjectHeader.for_new_object(schema.cls("Provider").class_id, False)
        too_many = InlineSet(tuple(Rid(1, 0, i) for i in range(1000)))
        with pytest.raises(SchemaError):
            codec.encode(header, {"name": "X", "upin": 1, "clients": too_many})

    def test_update_scalar_preserves_size_and_neighbours(self):
        schema, codec = self.make()
        header = ObjectHeader.for_new_object(schema.cls("Patient").class_id, True)
        record = codec.encode(header, {"name": "Valentin", "mrn": 5, "age": 20})
        updated = codec.update_scalar(record, "age", 21)
        assert len(updated) == len(record)
        assert codec.decode_attr(updated, "age") == 21
        assert codec.decode_attr(updated, "name") == "Valentin"
        assert codec.decode_attr(updated, "mrn") == 5

    def test_update_set_changes_size(self):
        schema, codec = self.make("Provider")
        header = ObjectHeader.for_new_object(schema.cls("Provider").class_id, False)
        record = codec.encode(
            header, {"name": "Asterix", "upin": 2, "clients": InlineSet(())}
        )
        grown = codec.update_set(
            record, "clients", InlineSet((Rid(1, 0, 0), Rid(1, 0, 1)))
        )
        assert len(grown) > len(record)
        assert codec.decode_attr(grown, "clients").count == 2
        assert codec.decode_attr(grown, "name") == "Asterix"

    def test_update_scalar_rejects_set_attr(self):
        schema, codec = self.make("Provider")
        with pytest.raises(SchemaError):
            codec.update_scalar(b"\x00" * 32, "clients", InlineSet(()))

    def test_patient_record_is_about_sixty_bytes(self):
        """Paper, Section 2: patient objects are about 60 bytes."""
        schema = patient_schema()
        full = Schema()
        full.define(
            "Patient",
            [
                AttributeDef("name", AttrKind.STRING),
                AttributeDef("mrn", AttrKind.INT32),
                AttributeDef("age", AttrKind.INT32),
                AttributeDef("sex", AttrKind.CHAR),
                AttributeDef("random_integer", AttrKind.INT32),
                AttributeDef("num", AttrKind.INT32),
                AttributeDef("primary_care_provider", AttrKind.REF),
            ],
        )
        codec = RecordCodec(full.cls("Patient"))
        header = ObjectHeader.for_new_object(1, True)
        record = codec.encode(header, {"name": "n", "mrn": 1})
        assert 50 <= len(record) <= 70

    @given(
        name=st.text(max_size=16).filter(lambda s: "\x00" not in s),
        mrn=st.integers(min_value=-(2**31), max_value=2**31 - 1),
        age=st.integers(min_value=-(2**31), max_value=2**31 - 1),
    )
    @settings(max_examples=100)
    def test_property_scalar_roundtrip(self, name, mrn, age):
        schema, codec = self.make()
        header = ObjectHeader.for_new_object(schema.cls("Patient").class_id, False)
        record = codec.encode(header, {"name": name, "mrn": mrn, "age": age})
        # utf-8 truncation can shorten multi-byte text; only require a prefix
        decoded_name = codec.decode_attr(record, "name")
        assert name.encode("utf-8")[:16].decode("utf-8", "replace").startswith(
            decoded_name[: max(0, len(decoded_name) - 1)]
        ) or decoded_name == name
        assert codec.decode_attr(record, "mrn") == mrn
        assert codec.decode_attr(record, "age") == age
