"""Unit tests for the B+-tree index and the index manager."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DuplicateIndexError, IndexError_
from repro.index import BTreeIndex, IndexManager
from repro.objects import AttrKind, AttributeDef, Database, Schema
from repro.objects.header import ObjectHeader
from repro.storage.rid import Rid


def simple_schema() -> Schema:
    schema = Schema()
    schema.define(
        "Patient",
        [
            AttributeDef("name", AttrKind.STRING),
            AttributeDef("mrn", AttrKind.INT32),
            AttributeDef("num", AttrKind.INT32),
        ],
    )
    return schema


def make_db() -> Database:
    db = Database(simple_schema())
    db.create_file("patients")
    return db


def make_index(db: Database, name: str = "idx", key_type: type = int) -> BTreeIndex:
    index_file = db.create_file(f"__file_{name}__")
    return BTreeIndex(name, 1, index_file, key_type)


# ------------------------------------------------------------- BTreeIndex

class TestBTreeBulk:
    def test_bulk_build_and_lookup(self):
        db = make_db()
        index = make_index(db)
        pairs = [(i, Rid(0, i // 10, i % 10)) for i in range(1000)]
        index.bulk_build(pairs)
        assert index.entry_count == 1000
        assert index.lookup(500) == [Rid(0, 50, 0)]
        assert index.lookup(5000) == []

    def test_duplicate_keys(self):
        db = make_db()
        index = make_index(db)
        index.bulk_build([(7, Rid(0, 0, 0)), (7, Rid(0, 0, 1)), (8, Rid(0, 0, 2))])
        assert index.lookup(7) == [Rid(0, 0, 0), Rid(0, 0, 1)]

    def test_range_scan_in_key_order(self):
        db = make_db()
        index = make_index(db)
        shuffled = list(range(500))
        random.Random(3).shuffle(shuffled)
        index.bulk_build([(k, Rid(0, k, 0)) for k in shuffled])
        keys = [e.key for e in index.range_scan(100, 199)]
        assert keys == list(range(100, 200))

    def test_range_scan_exclusive_bounds(self):
        db = make_db()
        index = make_index(db)
        index.bulk_build([(k, Rid(0, k, 0)) for k in range(10)])
        keys = [
            e.key
            for e in index.range_scan(2, 5, include_low=False, include_high=False)
        ]
        assert keys == [3, 4]

    def test_open_ended_scans(self):
        db = make_db()
        index = make_index(db)
        index.bulk_build([(k, Rid(0, k, 0)) for k in range(100)])
        assert len(list(index.range_scan(None, 9))) == 10
        assert len(list(index.range_scan(90, None))) == 10
        assert len(list(index.range_scan())) == 100

    def test_leaf_reads_charge_io(self):
        db = make_db()
        index = make_index(db)
        index.bulk_build([(k, Rid(0, k, 0)) for k in range(2000)])
        db.restart_cold()
        db.reset_meters()
        list(index.range_scan())
        assert db.counters.disk_reads >= index.leaf_count // 2

    def test_string_keys(self):
        db = make_db()
        index = make_index(db, "byname", str)
        index.bulk_build([("bob", Rid(0, 0, 0)), ("alice", Rid(0, 0, 1))])
        assert index.lookup("alice") == [Rid(0, 0, 1)]
        assert [e.key for e in index.range_scan()] == ["alice", "bob"]

    def test_bad_key_type_rejected(self):
        db = make_db()
        with pytest.raises(IndexError_):
            make_index(db, "byfloat", float)

    def test_index_id_zero_rejected(self):
        db = make_db()
        index_file = db.create_file("__f__")
        with pytest.raises(IndexError_):
            BTreeIndex("x", 0, index_file)

    def test_clustering_ratio_sequential_vs_random(self):
        db = make_db()
        clustered = make_index(db, "cl")
        clustered.bulk_build([(k, Rid(0, k, 0)) for k in range(1000)])
        assert clustered.clustering_ratio == pytest.approx(1.0)

        rng = random.Random(11)
        positions = list(range(1000))
        rng.shuffle(positions)
        unclustered = make_index(db, "uncl")
        unclustered.bulk_build([(k, Rid(0, positions[k], 0)) for k in range(1000)])
        assert unclustered.clustering_ratio == pytest.approx(0.5, abs=0.1)

    def test_selectivity_estimate(self):
        db = make_db()
        index = make_index(db)
        index.bulk_build([(k, Rid(0, k, 0)) for k in range(10000)])
        assert index.selectivity(None, 999) == pytest.approx(0.1, abs=0.05)
        assert index.selectivity(None, None) == 1.0
        assert index.selectivity(20000, None) <= 0.05


class TestBTreeIncremental:
    def test_insert_then_lookup(self):
        db = make_db()
        index = make_index(db)
        for k in [5, 1, 9, 3, 7]:
            index.insert(k, Rid(0, k, 0))
        assert [e.key for e in index.range_scan()] == [1, 3, 5, 7, 9]

    def test_insert_below_current_minimum(self):
        db = make_db()
        index = make_index(db)
        index.bulk_build([(k, Rid(0, k, 0)) for k in range(10, 20)])
        index.insert(1, Rid(0, 1, 0))
        assert [e.key for e in index.range_scan()][0] == 1

    def test_splits_keep_order(self):
        db = make_db()
        index = make_index(db)
        keys = list(range(1000))
        random.Random(5).shuffle(keys)
        for k in keys:
            index.insert(k, Rid(0, k, 0))
        assert [e.key for e in index.range_scan()] == list(range(1000))
        assert index.leaf_count > 1

    def test_remove(self):
        db = make_db()
        index = make_index(db)
        index.bulk_build([(k, Rid(0, k, 0)) for k in range(10)])
        assert index.remove(5, Rid(0, 5, 0))
        assert not index.remove(5, Rid(0, 5, 0))
        assert index.lookup(5) == []
        assert index.entry_count == 9

    @given(st.lists(st.integers(min_value=0, max_value=300), max_size=150))
    @settings(max_examples=30, deadline=None)
    def test_property_matches_sorted_reference(self, keys):
        db = make_db()
        index = make_index(db)
        reference = []
        for i, k in enumerate(keys):
            rid = Rid(0, i, 0)
            index.insert(k, rid)
            reference.append((k, rid))
        reference.sort()
        scanned = [(e.key, e.rid) for e in index.range_scan()]
        assert scanned == reference


# ------------------------------------------------------------- IndexManager

def populate(db: Database, n: int = 300, indexed: bool = False):
    coll = db.new_collection("Patients")
    rng = random.Random(1)
    for i in range(n):
        rid = db.create_object(
            "Patient",
            {"name": f"p{i}", "mrn": i, "num": rng.randrange(n)},
            "patients",
            indexed=indexed,
        )
        coll.append(rid)
    coll.flush()
    return coll


class TestIndexManager:
    def test_create_index_after_population(self):
        db = make_db()
        coll = populate(db)
        manager = IndexManager(db)
        index, report = manager.create_index("by_mrn", coll, "mrn")
        assert report.entries == 300
        assert report.headers_rewritten == 300
        assert report.headers_grown == 300  # objects had no slots
        assert index.lookup(42) != []
        assert coll.indexed

    def test_first_index_on_unindexed_objects_moves_records(self):
        """Paper §3.2: indexing after load reallocates objects on disk."""
        db = make_db()
        coll = populate(db, indexed=False)
        manager = IndexManager(db)
        __, report = manager.create_index("by_mrn", coll, "mrn")
        assert report.records_moved > 0

    def test_preallocated_slots_avoid_moves(self):
        db = make_db()
        coll = populate(db, indexed=True)
        manager = IndexManager(db)
        __, report = manager.create_index("by_mrn", coll, "mrn")
        assert report.headers_grown == 0
        assert report.records_moved == 0

    def test_duplicate_index_name_rejected(self):
        db = make_db()
        coll = populate(db)
        manager = IndexManager(db)
        manager.create_index("by_mrn", coll, "mrn")
        with pytest.raises(DuplicateIndexError):
            manager.create_index("by_mrn", coll, "mrn")

    def test_headers_record_membership(self):
        db = make_db()
        coll = populate(db, n=50)
        manager = IndexManager(db)
        index, __ = manager.create_index("by_mrn", coll, "mrn")
        some_rid = next(iter(coll.iter_rids()))
        record, __cls = db.manager.read_record(some_rid)
        header = ObjectHeader.decode(record)
        assert index.index_id in header.index_ids

    def test_second_index_reuses_slots(self):
        db = make_db()
        coll = populate(db, n=100)
        manager = IndexManager(db)
        manager.create_index("by_mrn", coll, "mrn")
        moved_before = db.counters.records_moved
        __, report = manager.create_index("by_num", coll, "num")
        assert report.headers_grown == 0
        assert db.counters.records_moved == moved_before

    def test_incremental_maintenance(self):
        db = make_db()
        coll = populate(db, n=20)
        manager = IndexManager(db)
        index, __ = manager.create_index("by_mrn", coll, "mrn")
        rid = db.create_object(
            "Patient",
            {"name": "new", "mrn": 999, "num": 1},
            "patients",
            index_ids=(index.index_id,),
        )
        coll.append(rid)
        manager.on_member_added("by_mrn", rid, 999)
        assert index.lookup(999) == [rid]
        manager.on_key_updated("by_mrn", rid, 999, 1000)
        assert index.lookup(999) == []
        assert index.lookup(1000) == [rid]
        manager.on_member_removed("by_mrn", rid, 1000)
        assert index.lookup(1000) == []

    def test_moved_records_are_indexed_at_new_rid(self):
        db = make_db()
        coll = populate(db, n=200, indexed=False)
        manager = IndexManager(db)
        index, report = manager.create_index("by_mrn", coll, "mrn")
        assert report.records_moved > 0
        # Every indexed rid must resolve to a record with the right key.
        for entry in index.range_scan():
            record, class_def = db.manager.read_record(entry.rid)
            codec = db.manager.codec(class_def)
            assert codec.decode_attr(record, "mrn") == entry.key
