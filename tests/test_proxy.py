"""Tests for the object-proxy façade."""

from __future__ import annotations

import pytest

from repro.cluster import load_derby
from repro.derby import DerbyConfig, generate
from repro.derby.config import Clustering
from repro.errors import ObjectError, SchemaError
from repro.objects.proxy import proxies
from repro.simtime import CostParams


@pytest.fixture(scope="module")
def derby():
    cfg = DerbyConfig(
        n_providers=10,
        n_patients=100,
        clustering=Clustering.CLASS,
        scale=0.001,
        params=CostParams().scaled(0.001),
    )
    return load_derby(cfg)


@pytest.fixture(scope="module")
def logical(derby):
    return generate(derby.config)


class TestObjectProxy:
    def test_scalar_attributes(self, derby, logical):
        with proxies(derby.db).fetch(derby.patient_rids[0]) as patient:
            assert patient.mrn == 1
            assert patient.name == logical.patients[0].name
            assert patient.class_name == "Patient"

    def test_reference_auto_deref(self, derby, logical):
        with proxies(derby.db).fetch(derby.patient_rids[0]) as patient:
            doctor = patient.primary_care_provider
            assert doctor.class_name == "Provider"
            assert doctor.upin == logical.patients[0].random_integer
            doctor.release()

    def test_set_iteration(self, derby, logical):
        with proxies(derby.db).fetch(derby.provider_rids[0]) as doctor:
            clients = doctor.clients
            assert len(clients) == len(logical.providers[0].patient_idxs)
            mrns = sorted(pa.mrn for pa in clients)
        expected = sorted(
            logical.patients[j].mrn for j in logical.providers[0].patient_idxs
        )
        assert mrns == expected

    def test_release_is_enforced(self, derby):
        proxy = proxies(derby.db).fetch(derby.patient_rids[0])
        proxy.release()
        with pytest.raises(ObjectError):
            __ = proxy.mrn
        proxy.release()  # idempotent

    def test_context_manager_releases_handle(self, derby):
        live_before = derby.db.handles.live_count
        with proxies(derby.db).fetch(derby.patient_rids[1]) as patient:
            __ = patient.age
            assert derby.db.handles.live_count == live_before + 1
        assert derby.db.handles.live_count == live_before

    def test_read_only(self, derby):
        with proxies(derby.db).fetch(derby.patient_rids[0]) as patient:
            with pytest.raises(ObjectError):
                patient.age = 99

    def test_unknown_attribute(self, derby):
        with proxies(derby.db).fetch(derby.patient_rids[0]) as patient:
            with pytest.raises(SchemaError):
                __ = patient.salary

    def test_access_is_charged(self, derby):
        derby.start_cold_run()
        with proxies(derby.db).fetch(derby.patient_rids[5]) as patient:
            __ = patient.name
        assert derby.db.clock.elapsed_s > 0

    def test_nested_navigation_chain(self, derby):
        """patient -> doctor -> first client -> doctor again."""
        with proxies(derby.db).fetch(derby.patient_rids[0]) as patient:
            doctor = patient.primary_care_provider
            first_client = next(iter(doctor.clients.rids()))
            via = proxies(derby.db).fetch(first_client)
            assert via.primary_care_provider.rid == doctor.rid
            via.release()
            doctor.release()
