"""Tests for per-shard replication: WAL shipping, the failure
detector, fenced failover, and the seeded failover chaos harness."""

from __future__ import annotations

import pytest

from repro.derby import DerbyConfig
from repro.dist import (
    REPLICATION_KILL_POINTS,
    FailureDetector,
    ReplicationInjector,
    ShardedMixConfig,
    ShardedWorkload,
    load_sharded,
    run_failover_case,
)
from repro.errors import (
    QueryCancelledError,
    RecoveryError,
    ReplicationError,
    ShardUnavailableError,
    StaleEpochError,
)
from repro.recovery import TransientFaultInjector
from repro.service.governor import RetryPolicy
from repro.simtime import Bucket
from repro.txn.log import COMMIT_RECORD_BYTES

TINY = 0.00001  # 10 providers / 30 patients


def make_replicated(n_shards=2, **kwargs):
    return load_sharded(
        DerbyConfig.db_1to3(scale=TINY), n_shards, replicas=1, **kwargs
    )


def _patient_on(cluster, shard_id, slot=0):
    return cluster.nodes[shard_id].derby.patient_rids[slot]


def _age(node, rid):
    return int(node.db.manager.get_attr_at(rid, "age"))


def _commit_age(cluster, shard_id, rid, value):
    dtx = cluster.begin()
    dtx.update_scalar(shard_id, rid, "age", value)
    dtx.commit()


def _advance(cluster, seconds):
    cluster.clock.charge_s(Bucket.BACKOFF, seconds)


# -- ship/ack plumbing ---------------------------------------------------


def test_sync_link_ships_inside_the_commit():
    cluster = make_replicated()
    rid = _patient_on(cluster, 0)
    link = cluster.links[0]
    before = link.ship_msgs
    _commit_age(cluster, 0, rid, 41)
    # Sync: the flush does not return (and the client is not acked)
    # until the replica durably holds the records.
    assert link.ship_msgs > before
    assert link.lag_records() == 0
    assert link.acked_lsn == cluster.nodes[0].txm.log.durable_lsn
    # Continuous redo applied the committed write at the standby.
    assert _age(cluster.standbys[0], rid) == 41


def test_async_link_lags_within_bound_and_drains_on_pump():
    cluster = make_replicated(ship_mode="async", max_lag_records=1000)
    rid = _patient_on(cluster, 0)
    for value in (50, 51, 52):
        _commit_age(cluster, 0, rid, value)
    link = cluster.links[0]
    standby_wal = cluster.standbys[0].txm.log
    assert 0 < link.lag_records() <= 1000
    assert standby_wal.durable_lsn < cluster.nodes[0].txm.log.durable_lsn
    cluster.tick()  # the pump drains pending records
    assert link.lag_records() == 0
    assert standby_wal.durable_lsn == cluster.nodes[0].txm.log.durable_lsn
    assert _age(cluster.standbys[0], rid) == 52


def test_async_link_ships_eagerly_when_loss_bound_is_due():
    cluster = make_replicated(ship_mode="async", max_lag_records=2)
    rid = _patient_on(cluster, 0)
    for value in range(60, 70):
        _commit_age(cluster, 0, rid, value)
    # Without a single tick, the flush hook itself must have shipped to
    # keep the acknowledged-loss window within the configured bound.
    assert cluster.links[0].lag_records() <= 2


def test_ship_metering_is_deterministic():
    def meter():
        cluster = make_replicated()
        config = ShardedMixConfig(
            scanners=1, updaters=2, ops_per_client=3, seed=11
        )
        report = ShardedWorkload(cluster, config).run()
        link = cluster.links[0]
        return (
            report.committed,
            round(report.elapsed_s, 9),
            link.ship_msgs,
            link.shipped_records,
            link.shipped_bytes,
            link.acks,
            round(link.ack_wait_s, 9),
        )

    first, second = meter(), meter()
    assert first == second
    assert first[2] > 0  # something actually shipped


def test_replica_must_match_primary_log_position():
    cluster = make_replicated()
    # Mutating the primary after links are attached is fine; building a
    # *new* link against a diverged replica is not.
    from repro.dist.replication import ReplicaLink

    rid = _patient_on(cluster, 0)
    _commit_age(cluster, 0, rid, 45)
    with pytest.raises(ReplicationError):
        ReplicaLink(
            cluster, 0, cluster.nodes[0], cluster.standbys[1], mode="sync"
        )


# -- failure detector ----------------------------------------------------


def test_detector_walks_alive_suspect_dead():
    cluster = make_replicated()
    det = cluster.detector
    assert det.state_of(0) == "alive"
    cluster.kill_primary(0)
    assert det.state_of(0) == "alive"  # silence not yet observed
    _advance(cluster, det.lease_s + det.heartbeat_interval_s)
    assert det.pump() == []
    assert det.state_of(0) == "suspect"
    assert det.state_of(1) == "alive"  # the healthy shard keeps beating
    _advance(cluster, det.grace_s + det.heartbeat_interval_s)
    assert det.pump() == [0]
    assert det.state_of(0) == "dead"
    assert det.pump() == []  # dead is declared exactly once


def test_detection_window_is_bounded():
    cluster = make_replicated()
    det = cluster.detector
    killed_at = cluster.clock.elapsed_s
    cluster.kill_primary(0)
    # March the timeline forward one heartbeat at a time until the
    # detector declares death; the window is lease + grace, give or
    # take one heartbeat interval on either side.
    for __ in range(100):
        _advance(cluster, det.heartbeat_interval_s)
        if det.pump():
            break
    window = cluster.clock.elapsed_s - killed_at
    assert window <= det.lease_s + det.grace_s + 2 * det.heartbeat_interval_s
    assert window >= det.lease_s + det.grace_s - det.heartbeat_interval_s


def test_detector_rejects_lease_shorter_than_heartbeat():
    cluster = make_replicated()
    with pytest.raises(ReplicationError):
        FailureDetector(cluster, heartbeat_interval_s=0.1, lease_s=0.05)


# -- fenced failover -----------------------------------------------------


def _settle(cluster, seconds=0.3):
    _advance(cluster, seconds)
    cluster.tick()


def test_failover_promotes_standby_and_serves_writes():
    cluster = make_replicated()
    rid = _patient_on(cluster, 0)
    _commit_age(cluster, 0, rid, 71)
    standby = cluster.standbys[0]
    cluster.kill_primary(0)
    with pytest.raises(ShardUnavailableError):
        _commit_age(cluster, 0, rid, 72)
    _settle(cluster)
    # The standby is now the serving primary, under a bumped epoch.
    assert cluster.route.node_for(0) is standby
    assert standby.role == "primary"
    assert cluster.route.epoch_of(0) == 1
    assert cluster.route.failovers[0] == 1
    assert _age(standby, rid) == 71  # the shipped write survived
    _commit_age(cluster, 0, rid, 73)  # and the shard serves again
    assert _age(standby, rid) == 73
    assert cluster.shard_unavailable_s(0) > 0
    assert cluster.shard_unavailable_s(1) == 0


def test_epoch_record_is_durable_before_promotion():
    cluster = make_replicated()
    cluster.kill_primary(0)
    _settle(cluster)
    kinds = [r.kind for r in cluster.decision_log.durable_records()]
    assert "epoch" in kinds
    epoch_atts = [
        r.att
        for r in cluster.decision_log.durable_records()
        if r.kind == "epoch"
    ]
    assert ((0, 1),) in epoch_atts
    # Epoch records must not pollute 2PC decision scanning.
    assert cluster.decided_branches() == set()


def test_zombie_primary_is_fenced_by_epoch():
    cluster = make_replicated()
    old = cluster.nodes[0]
    rid = _patient_on(cluster, 0)
    cluster.kill_primary(0, partition=True)  # process alive, unreachable
    _settle(cluster)
    assert cluster.route.epoch_of(0) == 1
    # The partitioned old primary heals and tries to serve — its stale
    # epoch makes every coordinator call refuse it.
    cluster.rejoin(old)
    assert old.role == "primary" and old.epoch == 0
    with pytest.raises(StaleEpochError):
        cluster.call(old, lambda: _age(old, rid))
    with pytest.raises(StaleEpochError):
        cluster.fanout([(old, lambda: None)])
    # The promoted node serves normally.
    _commit_age(cluster, 0, rid, 74)


@pytest.mark.parametrize("decision", ["commit", "abort"])
def test_promotion_resolves_in_doubt_branches(decision):
    """A branch prepared on the dead primary (and shipped) resolves at
    promotion against the coordinator's decision log — both ways."""
    cluster = make_replicated()
    rid = _patient_on(cluster, 0)
    preload = _age(cluster.nodes[0], rid)
    dtx = cluster.begin()
    dtx.update_scalar(0, rid, "age", 99)
    txn = dtx.branches[0]
    # Force-log the vote (the flush ships update + prepare records to
    # the standby), then stop: the branch is now in doubt.
    dtx._make_prepare(0)()
    if decision == "commit":
        cluster.decision_log.append(
            dtx.global_id,
            "commit",
            COMMIT_RECORD_BYTES + 8,
            att=((0, txn.txn_id),),
        )
        cluster.decision_log.flush()
    cluster.kill_primary(0)
    _settle(cluster)
    promoted = cluster.route.node_for(0)
    assert promoted.epoch == 1
    expected = 99 if decision == "commit" else preload
    assert _age(promoted, rid) == expected
    assert promoted.txm.active_count == 0  # nothing left in doubt


#: Ship-point kill -> is the interrupted commit durable on the promoted
#: standby?  The replica holds the records once the ship applied them
#: (mid-ship and after), and never sees them if the primary died first.
_SHIP_POINT_SURVIVES = {
    "repl-before-ship": False,
    "repl-mid-ship": True,
    "repl-after-ship": True,
}


@pytest.mark.parametrize("point", REPLICATION_KILL_POINTS[:3])
def test_kill_at_every_ship_point(point):
    cluster = make_replicated()
    rid = _patient_on(cluster, 0)
    preload = _age(cluster.nodes[0], rid)
    injector = ReplicationInjector(point)
    injector.arm(cluster)
    with pytest.raises(ShardUnavailableError):
        _commit_age(cluster, 0, rid, 88)
    assert injector.fired
    assert cluster.kills == 1
    _settle(cluster)
    promoted = cluster.route.node_for(0)
    assert promoted.role == "primary" and not promoted.down
    expected = 88 if _SHIP_POINT_SURVIVES[point] else preload
    assert _age(promoted, rid) == expected
    # The shard serves again; a clean retry lands either way.
    _commit_age(cluster, 0, rid, 89)
    assert _age(promoted, rid) == 89


@pytest.mark.parametrize("point", REPLICATION_KILL_POINTS[3:])
def test_kill_at_every_promote_point_is_a_double_failure(point):
    cluster = make_replicated()
    rid = _patient_on(cluster, 0)
    injector = ReplicationInjector(point)
    injector.arm(cluster)
    cluster.kill_primary(0)
    _settle(cluster)
    assert injector.fired
    # Both copies are gone: no routing changed, the shard fails fast.
    assert cluster.route.failovers[0] == 0
    assert cluster.route.node_for(0).down
    with pytest.raises(ShardUnavailableError):
        _commit_age(cluster, 0, rid, 90)
    if point == "repl-mid-promote":
        # The fence was already durable when the standby died: the
        # epoch is burned even though no promotion happened.
        kinds = [r.kind for r in cluster.decision_log.durable_records()]
        assert "epoch" in kinds
    # The healthy shard is untouched.
    _commit_age(cluster, 1, _patient_on(cluster, 1), 91)


def test_injector_rejects_unknown_point():
    with pytest.raises(RecoveryError):
        ReplicationInjector("repl-nonsense")
    with pytest.raises(RecoveryError):
        ReplicationInjector("repl-mid-ship", occurrence=0)


# -- loss windows --------------------------------------------------------


def test_sync_kill_reports_zero_acked_loss():
    cluster = make_replicated()
    rid = _patient_on(cluster, 0)
    _commit_age(cluster, 0, rid, 61)
    cluster.kill_primary(0)
    assert cluster.loss_windows[0] == 0


def test_async_kill_reports_bounded_loss_window():
    cluster = make_replicated(ship_mode="async", max_lag_records=1000)
    rid = _patient_on(cluster, 0)
    for value in (62, 63, 64):
        _commit_age(cluster, 0, rid, value)
    lag = cluster.links[0].lag_records()
    assert lag > 0
    cluster.kill_primary(0)
    # Every lagging record was acked to some client: all of it is loss.
    assert cluster.loss_windows[0] == lag


# -- retries and the workload --------------------------------------------


def test_shard_unavailable_is_retryable():
    assert RetryPolicy.retryable(ShardUnavailableError("x"))
    assert not RetryPolicy.retryable(ReplicationError("x"))
    assert not RetryPolicy.retryable(StaleEpochError("x"))


def test_workload_rides_through_a_primary_kill():
    cluster = make_replicated(n_shards=2)
    cluster.schedule_kill(0, at_s=0.05)
    config = ShardedMixConfig(
        scanners=1, updaters=2, ops_per_client=4, seed=7
    )
    workload = ShardedWorkload(cluster, config)
    report = workload.run()
    assert cluster.kills == 1
    assert cluster.route.failovers[0] == 1
    assert report.unavailable > 0  # sessions saw the outage...
    assert report.gave_up == 0  # ...and retried through it
    assert report.committed > 0
    # Acked writes survived the failover.
    last = {}
    for home, value in workload.write_log:
        last[home] = value
    for (sid, rid), value in last.items():
        node = cluster.route.node_for(sid)
        assert _age(node, rid) == value


def test_double_failure_fails_fast_with_clean_accounting():
    cluster = make_replicated(n_shards=2)
    cluster.schedule_kill(0, at_s=0.02)
    injector = ReplicationInjector("repl-mid-promote")
    injector.arm(cluster)
    config = ShardedMixConfig(
        scanners=0,
        updaters=2,
        ops_per_client=3,
        seed=13,
        unavailable_retries=3,
    )
    report = ShardedWorkload(cluster, config).run()
    assert injector.fired
    assert cluster.route.failovers[0] == 0
    # Ops homed on the dead shard exhausted the unavailable allowance
    # and gave up; nothing hung, nothing leaked.
    assert report.unavailable > 0
    assert report.gave_up > 0
    assert cluster.lock_table.lock_count == 0
    assert cluster.active_count == 0
    for node in cluster.all_nodes():
        if not node.down:
            assert node.txm.active_count == 0


# -- chaos harness -------------------------------------------------------


@pytest.mark.parametrize("seed", [0, 5, 9])
def test_failover_chaos_sync_cases_pass(seed):
    result = run_failover_case(seed, ship_mode="sync")
    assert result.ok, result.failures
    assert result.loss_window in (None, 0)


@pytest.mark.parametrize("seed", [100, 104])
def test_failover_chaos_async_cases_pass(seed):
    result = run_failover_case(seed, ship_mode="async")
    assert result.ok, result.failures


# -- stats export --------------------------------------------------------


def test_replication_to_csv_renders_per_shard_rows():
    from types import SimpleNamespace

    from repro.stats import replication_to_csv

    rows = [
        SimpleNamespace(
            label="mix-sync", n_shards=2, ship_mode="sync", shard=i,
            ship_msgs=10 + i, shipped_records=20, shipped_bytes=1440,
            ship_lag_records=0, ack_wait_s=0.25, failovers=i,
            epoch=i, unavailable_s=0.1 * i, loss_window_records=0,
        )
        for i in range(2)
    ]
    csv = replication_to_csv(rows)
    lines = csv.strip().splitlines()
    assert lines[0].startswith("label,n_shards,ship_mode,shard,")
    assert len(lines) == 3
    assert lines[1].startswith("mix-sync,2,sync,0,10,20,1440,0,0.2500,0,0,")
    assert lines[2].endswith("0.1000,0")
    # Duck typing: missing attributes render empty, not crash.
    sparse = replication_to_csv([SimpleNamespace(label="x")])
    assert sparse.strip().splitlines()[1].startswith("x,,")


# -- satellite regressions -----------------------------------------------


def test_for_node_replica_streams_are_independent():
    """Primary and replica of the same shard must draw independent
    fault schedules (regression: both used to share the node stream)."""
    base = TransientFaultInjector(seed=3, read_fault_rate=0.5)
    primary = base.for_node(0)
    replica = base.for_node(0, replica=1)
    again = base.for_node(0, replica=1)
    draws_p = [primary.read_fails(0, p, 0) for p in range(64)]
    draws_r = [replica.read_fails(0, p, 0) for p in range(64)]
    draws_again = [again.read_fails(0, p, 0) for p in range(64)]
    assert draws_r == draws_again  # same (seed, node, replica) -> same
    assert draws_p != draws_r  # primary and standby diverge


def test_cancelled_exchange_closes_remote_cursors():
    """Governed cancellation abandoning a partially-drained exchange
    must close every shard cursor (regression: they leaked open)."""
    from repro.dist import Coordinator
    from repro.dist.exchange import ExchangeOperator

    cluster = load_sharded(DerbyConfig.db_1to3(scale=0.0002), 3)
    coordinator = Coordinator(cluster)
    pulls = 0

    def cancel_after_two():
        nonlocal pulls
        pulls += 1
        if pulls >= 2:
            raise QueryCancelledError("governor pulled the plug")

    cursor = coordinator.execute_iter(
        "select p.age from p in Patients where p.num > 0",
        on_batch=cancel_after_two,
        batch_size=4,
    )
    exchange = cursor.root
    assert isinstance(exchange, ExchangeOperator)
    with pytest.raises(QueryCancelledError):
        cursor.drain()
    assert exchange._closed
    for __, shard_cursor in exchange.streams:
        assert shard_cursor.root._closed
