"""Unit tests for handles, the object manager and the database."""

from __future__ import annotations

import pytest

from repro.errors import DanglingReferenceError, HandleError, ObjectError
from repro.objects import (
    AttrKind,
    AttributeDef,
    Database,
    HandleMode,
    HandleTable,
    Schema,
)
from repro.objects.codec import InlineSet, OverflowSet
from repro.simtime import Bucket, CostParams, CounterSet, SimClock
from repro.storage.rid import Rid


def derby_like_schema() -> Schema:
    schema = Schema()
    schema.define(
        "Patient",
        [
            AttributeDef("name", AttrKind.STRING),
            AttributeDef("mrn", AttrKind.INT32),
            AttributeDef("age", AttrKind.INT32),
            AttributeDef("primary_care_provider", AttrKind.REF, target="Provider"),
        ],
    )
    schema.define(
        "Provider",
        [
            AttributeDef("name", AttrKind.STRING),
            AttributeDef("upin", AttrKind.INT32),
            AttributeDef("clients", AttrKind.REF_SET, target="Patient"),
        ],
    )
    return schema


def make_db(handle_mode: HandleMode = HandleMode.FULL) -> Database:
    db = Database(derby_like_schema(), handle_mode=handle_mode)
    db.create_file("patients")
    db.create_file("providers")
    return db


# ------------------------------------------------------------- HandleTable

class TestHandleTable:
    def make(self, mode=HandleMode.FULL, capacity=4):
        clock = SimClock()
        table = HandleTable(clock, CostParams(), CounterSet(), mode, capacity)
        return clock, table

    def loader(self):
        schema = derby_like_schema()
        return lambda: (b"\x01\x01\x00\x00payload", schema.cls("Patient"))

    def test_get_allocates_once_and_shares(self):
        clock, table = self.make()
        rid = Rid(0, 0, 0)
        h1 = table.get(rid, self.loader())
        h2 = table.get(rid, self.loader())
        assert h1 is h2
        assert h1.refcount == 2
        assert table.counters.handles_allocated == 1

    def test_unreference_parks_then_revives(self):
        clock, table = self.make()
        rid = Rid(0, 0, 0)
        h = table.get(rid, self.loader())
        table.unreference(h)
        assert table.live_count == 0
        assert table.parked_count == 1
        revived = table.get(rid, self.loader())
        assert revived is h
        assert table.parked_count == 0
        # Revival must not count as a fresh allocation.
        assert table.counters.handles_allocated == 1

    def test_double_unreference_rejected(self):
        clock, table = self.make()
        h = table.get(Rid(0, 0, 0), self.loader())
        table.unreference(h)
        with pytest.raises(HandleError):
            table.unreference(h)

    def test_delayed_free_capacity_bounds_parked(self):
        clock, table = self.make(capacity=2)
        for i in range(5):
            h = table.get(Rid(0, 0, i), self.loader())
            table.unreference(h)
        assert table.parked_count == 2

    def test_full_mode_charges_more_than_bulk(self):
        def cost(mode):
            clock, table = self.make(mode)
            for i in range(100):
                h = table.get(Rid(0, 0, i), self.loader())
                table.unreference(h)
            return clock.bucket_s(Bucket.HANDLE)

        assert cost(HandleMode.FULL) > 5 * cost(HandleMode.BULK)

    def test_literal_charges_by_mode(self):
        def literal_cost(mode):
            clock, table = self.make(mode)
            table.charge_literal(fixed_size=True)
            return clock.bucket_s(Bucket.HANDLE)

        assert literal_cost(HandleMode.FULL) > literal_cost(
            HandleMode.COMPACT_LITERALS
        )
        assert literal_cost(HandleMode.INLINE_TUPLES) == 0.0

    def test_inline_tuples_still_charges_variable_literals(self):
        clock, table = self.make(HandleMode.INLINE_TUPLES)
        table.charge_literal(fixed_size=False)
        assert clock.bucket_s(Bucket.HANDLE) > 0.0

    def test_memory_accounting(self):
        clock, table = self.make()
        h = table.get(Rid(0, 0, 0), self.loader())
        assert table.memory_bytes == 60
        table.unreference(h)
        assert table.memory_bytes == 60  # parked, not freed
        table.clear()
        assert table.memory_bytes == 0


# ------------------------------------------------------------- ObjectManager

class TestObjectManager:
    def test_create_load_get_attr(self):
        db = make_db()
        rid = db.create_object(
            "Patient", {"name": "Daisy", "mrn": 44, "age": 61}, "patients"
        )
        handle = db.manager.load(rid)
        assert db.manager.get_attr(handle, "mrn") == 44
        assert db.manager.get_attr(handle, "name") == "Daisy"
        db.manager.unref(handle)

    def test_get_attr_at_convenience(self):
        db = make_db()
        rid = db.create_object("Patient", {"mrn": 3}, "patients")
        assert db.manager.get_attr_at(rid, "mrn") == 3
        assert db.handles.live_count == 0

    def test_reference_navigation(self):
        db = make_db()
        doc = db.create_object("Provider", {"name": "Asterix", "upin": 1}, "providers")
        pat = db.create_object(
            "Patient", {"name": "Obelix", "mrn": 2, "primary_care_provider": doc},
            "patients",
        )
        handle = db.manager.load(pat)
        doc_rid = db.manager.get_attr(handle, "primary_care_provider")
        db.manager.unref(handle)
        assert db.manager.get_attr_at(doc_rid, "name") == "Asterix"

    def test_unregistered_file_raises(self):
        db = make_db()
        with pytest.raises(DanglingReferenceError):
            db.manager.load(Rid(99, 0, 0))

    def test_update_scalar_visible_to_later_loads(self):
        db = make_db()
        rid = db.create_object("Patient", {"mrn": 1, "age": 10}, "patients")
        db.manager.update_scalar(rid, "age", 11)
        assert db.manager.get_attr_at(rid, "age") == 11

    def test_update_refreshes_live_handle(self):
        db = make_db()
        rid = db.create_object("Patient", {"mrn": 1, "age": 10}, "patients")
        handle = db.manager.load(rid)
        db.manager.update_scalar(rid, "age", 12)
        assert db.manager.get_attr(handle, "age") == 12
        db.manager.unref(handle)

    def test_string_attr_pays_literal_handle_in_full_mode(self):
        full = make_db(HandleMode.FULL)
        inline = make_db(HandleMode.INLINE_TUPLES)
        for db in (full, inline):
            rid = db.create_object("Patient", {"name": "Daisy", "mrn": 1}, "patients")
            db.reset_meters()
            handle = db.manager.load(rid)
            db.manager.get_attr(handle, "name")
            db.manager.unref(handle)
        assert full.clock.bucket_s(Bucket.HANDLE) > inline.clock.bucket_s(
            Bucket.HANDLE
        )

    def test_header_of(self):
        db = make_db()
        rid = db.create_object("Patient", {"mrn": 1}, "patients", indexed=True)
        handle = db.manager.load(rid)
        header = db.manager.header_of(handle)
        assert header.is_indexed
        assert header.slot_count == 8
        db.manager.unref(handle)


# ------------------------------------------------------------- Database

class TestDatabase:
    def test_file_management(self):
        db = make_db()
        assert db.has_file("patients")
        with pytest.raises(ObjectError):
            db.create_file("patients")
        with pytest.raises(ObjectError):
            db.file("ghost")

    def test_named_collections(self):
        db = make_db()
        coll = db.new_collection("Patients")
        assert db.name("Patients") is coll
        assert "Patients" in db.names()
        with pytest.raises(ObjectError):
            db.new_collection("Patients")
        with pytest.raises(ObjectError):
            db.name("Doctors")

    def test_collection_roundtrip_small(self):
        db = make_db()
        coll = db.new_collection("Patients")
        rids = [
            db.create_object("Patient", {"mrn": i}, "patients") for i in range(10)
        ]
        coll.extend(rids)
        assert list(coll.iter_rids()) == rids
        assert len(coll) == 10

    def test_collection_roundtrip_multi_chunk(self):
        db = make_db()
        coll = db.new_collection("Patients")
        rids = [
            db.create_object("Patient", {"mrn": i}, "patients") for i in range(950)
        ]
        coll.extend(rids)
        assert list(coll.iter_rids()) == rids
        # 950 rids at 400/chunk -> 3 chunk records
        assert db.collections_file.record_count == 3

    def test_collection_iteration_charges_io(self):
        db = make_db()
        coll = db.new_collection("Patients")
        coll.extend(
            db.create_object("Patient", {"mrn": i}, "patients") for i in range(500)
        )
        coll.flush()
        db.restart_cold()
        db.reset_meters()
        list(coll.iter_rids())
        assert db.counters.disk_reads >= 1

    def test_small_set_stays_inline(self):
        db = make_db()
        pats = [db.create_object("Patient", {"mrn": i}, "patients") for i in range(3)]
        doc = db.create_object(
            "Provider", {"name": "D", "upin": 1, "clients": pats}, "providers"
        )
        handle = db.manager.load(doc)
        clients = db.manager.get_attr(handle, "clients")
        db.manager.unref(handle)
        assert isinstance(clients, InlineSet)
        assert list(db.iter_set_rids(clients)) == pats

    def test_large_set_spills_to_collection_file(self):
        db = make_db()
        pats = [
            db.create_object("Patient", {"mrn": i}, "patients") for i in range(1000)
        ]
        doc = db.create_object(
            "Provider", {"name": "D", "upin": 1, "clients": pats}, "providers"
        )
        handle = db.manager.load(doc)
        clients = db.manager.get_attr(handle, "clients")
        db.manager.unref(handle)
        assert isinstance(clients, OverflowSet)
        assert clients.count == 1000
        assert list(db.iter_set_rids(clients)) == pats
        # 1000 rids / 400 per chunk -> 3 chained chunk records
        assert db.collections_file.record_count == 3

    def test_overflow_set_iteration_charges_io(self):
        db = make_db()
        pats = [
            db.create_object("Patient", {"mrn": i}, "patients") for i in range(1000)
        ]
        doc = db.create_object(
            "Provider", {"upin": 1, "clients": pats}, "providers"
        )
        handle = db.manager.load(doc)
        clients = db.manager.get_attr(handle, "clients")
        db.manager.unref(handle)
        db.restart_cold()
        db.reset_meters()
        assert len(list(db.iter_set_rids(clients))) == 1000
        assert db.counters.disk_reads >= 3

    def test_restart_cold_clears_everything(self):
        db = make_db()
        rid = db.create_object("Patient", {"mrn": 1}, "patients")
        db.manager.get_attr_at(rid, "mrn")
        db.restart_cold()
        assert db.handles.live_count == 0
        db.reset_meters()
        db.manager.get_attr_at(rid, "mrn")
        assert db.counters.disk_reads >= 1  # truly cold again

    def test_object_creation_charges_load_bucket(self):
        db = make_db()
        db.reset_meters()
        db.create_object("Patient", {"mrn": 1}, "patients")
        assert db.clock.bucket_s(Bucket.LOAD) > 0
