"""Tests for the OQL unparser, including parse/print round trips."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.oql import parse
from repro.oql.printer import print_query

ROUND_TRIP_QUERIES = [
    "select p.age from p in Patients",
    "select distinct p.age from p in Patients where p.num > 5",
    "select tuple(n: p.name, a: pa.age) from p in Providers, "
    "pa in p.clients where pa.mrn < 100 and p.upin < 10",
    "select count(*) from p in Patients",
    "select count(p) from p in Patients where p.mrn < 7",
    "select sum(p.age) from p in Patients where p.num >= 3",
    "select p.age from p in Patients where p.mrn < 10 order by p.age desc",
    "select p.age from p in Patients order by p.age, p.mrn desc",
    "select p.name from p in Providers "
    "where exists pa in p.clients : pa.age > 90",
    "select p.a from p in C where (p.x < 1 or p.y > 2) and p.z = 3",
    "select p.a from p in C where not p.x < 1",
    "select p.name from p in C where p.name = 'Tintin'",
    "select [p.name, p.age] from p in Patients",
]


class TestRoundTrip:
    @pytest.mark.parametrize("text", ROUND_TRIP_QUERIES)
    def test_parse_print_parse_fixpoint(self, text):
        once = parse(text)
        printed = print_query(once)
        again = parse(printed)
        assert once == again, f"round trip changed the AST:\n{printed}"

    @pytest.mark.parametrize("text", ROUND_TRIP_QUERIES)
    def test_print_is_stable(self, text):
        printed = print_query(parse(text))
        assert print_query(parse(printed)) == printed


# A tiny random query generator: enough variety to shake precedence bugs.
_vars = st.sampled_from(["p", "q"])
_attrs = st.sampled_from(["a", "b", "c"])
_ops = st.sampled_from(["<", "<=", ">", ">=", "=", "!="])


@st.composite
def comparisons(draw):
    var = draw(_vars)
    attr = draw(_attrs)
    op = draw(_ops)
    value = draw(st.integers(min_value=-99, max_value=99))
    return f"{var}.{attr} {op} {value}"


@st.composite
def where_clauses(draw, depth=2):
    if depth == 0 or draw(st.booleans()):
        return draw(comparisons())
    left = draw(where_clauses(depth=depth - 1))
    right = draw(where_clauses(depth=depth - 1))
    combinator = draw(st.sampled_from(["and", "or"]))
    if draw(st.booleans()):
        return f"({left}) {combinator} ({right})"
    return f"not ({left})"


class TestRandomRoundTrip:
    @given(where=where_clauses())
    @settings(max_examples=100)
    def test_property_roundtrip(self, where):
        text = f"select p.a from p in C where {where}"
        once = parse(text)
        assert parse(print_query(once)) == once
