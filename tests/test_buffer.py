"""Unit tests for the buffer substrate (policies, caches, client/server)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.buffer import BufferCache, ClientServerSystem, ClockPolicy, LRUPolicy
from repro.simtime import MemoryModel
from repro.storage import DiskManager, StorageFile
from repro.storage.page import Page
from repro.units import PAGE_SIZE


# ---------------------------------------------------------- policies

class TestLRUPolicy:
    def test_evicts_least_recent(self):
        lru = LRUPolicy()
        lru.touch((0, 0))
        lru.touch((0, 1))
        lru.touch((0, 0))  # refresh
        assert lru.evict() == (0, 1)
        assert lru.evict() == (0, 0)

    def test_discard(self):
        lru = LRUPolicy()
        lru.touch((0, 0))
        lru.discard((0, 0))
        assert len(lru) == 0
        lru.discard((9, 9))  # absent: no error

    def test_empty_evict_raises(self):
        with pytest.raises(KeyError):
            LRUPolicy().evict()


class TestClockPolicy:
    def test_second_chance(self):
        clock = ClockPolicy()
        clock.touch((0, 0))
        clock.touch((0, 1))
        clock.touch((0, 0))  # referenced bit set
        # (0,0) gets a second chance; (0,1) is the victim.
        assert clock.evict() == (0, 1)
        assert clock.evict() == (0, 0)

    @given(st.lists(st.integers(min_value=0, max_value=5), max_size=50))
    @settings(max_examples=50)
    def test_property_never_loses_pages(self, accesses):
        clock = ClockPolicy()
        for page_no in accesses:
            clock.touch((0, page_no))
        distinct = len({(0, p) for p in accesses})
        assert len(clock) == distinct
        evicted = {clock.evict() for __ in range(distinct)}
        assert len(evicted) == distinct


# ---------------------------------------------------------- BufferCache

def page(no: int, dirty: bool = False) -> Page:
    p = Page(0, no)
    p.dirty = dirty
    return p


class TestBufferCache:
    def test_insert_lookup(self):
        cache = BufferCache(2)
        p = page(0)
        cache.insert(p)
        assert cache.lookup((0, 0)) is p
        assert cache.lookup((0, 1)) is None

    def test_capacity_enforced(self):
        cache = BufferCache(2)
        for no in range(5):
            cache.insert(page(no))
        assert len(cache) == 2

    def test_eviction_is_lru(self):
        cache = BufferCache(2)
        cache.insert(page(0))
        cache.insert(page(1))
        cache.lookup((0, 0))        # 1 is now the LRU
        cache.insert(page(2))
        assert cache.contains((0, 0))
        assert not cache.contains((0, 1))

    def test_dirty_eviction_callback(self):
        written = []
        cache = BufferCache(1, on_evict_dirty=written.append)
        dirty = page(0, dirty=True)
        cache.insert(dirty)
        cache.insert(page(1))
        assert written == [dirty]

    def test_clean_eviction_no_callback(self):
        written = []
        cache = BufferCache(1, on_evict_dirty=written.append)
        cache.insert(page(0))
        cache.insert(page(1))
        assert written == []

    def test_reinsert_same_page_no_evict(self):
        cache = BufferCache(1)
        p = page(0)
        cache.insert(p)
        cache.insert(p)
        assert len(cache) == 1

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            BufferCache(0)


# ---------------------------------------------------------- MemoryModel

class TestMemoryModel:
    def test_default_budgets(self):
        mem = MemoryModel()
        assert mem.server_cache_pages == 1024      # 4 MB of 4 KB pages
        assert mem.client_cache_pages == 8192      # 32 MB -> 8000ish pages
        assert mem.query_memory_bytes == 40 * 1024 * 1024

    def test_scaling_preserves_ratio(self):
        mem = MemoryModel().scaled(0.01)
        ratio = mem.client_cache_bytes / MemoryModel().client_cache_bytes
        assert ratio == pytest.approx(0.01, rel=0.01)
        assert mem.query_memory_bytes == pytest.approx(
            MemoryModel().query_memory_bytes * 0.01, rel=0.05
        )

    def test_scale_must_be_positive(self):
        with pytest.raises(ValueError):
            MemoryModel().scaled(0)


# ---------------------------------------------------------- ClientServerSystem

def small_system(client_pages: int = 4, server_pages: int = 2):
    disk = DiskManager()
    memory = MemoryModel(
        ram_bytes=1024 * PAGE_SIZE,
        server_cache_bytes=server_pages * PAGE_SIZE,
        client_cache_bytes=client_pages * PAGE_SIZE,
        system_reserved_bytes=0,
    )
    return disk, ClientServerSystem(disk, memory)


class TestClientServerSystem:
    def test_cold_read_goes_to_disk(self):
        disk, system = small_system()
        fid = disk.create_file()
        disk.allocate_page(fid)
        system.get_page(fid, 0)
        c = disk.counters
        assert c.client_faults == 1
        assert c.server_faults == 1
        assert c.disk_reads == 1
        assert c.rpcs == 1
        assert c.server_to_client == 1

    def test_warm_read_hits_client_cache(self):
        disk, system = small_system()
        fid = disk.create_file()
        disk.allocate_page(fid)
        system.get_page(fid, 0)
        system.get_page(fid, 0)
        c = disk.counters
        assert c.client_hits == 1
        assert c.disk_reads == 1
        assert c.rpcs == 1

    def test_server_hit_after_client_eviction(self):
        # Client holds 1 page, server holds 4: page 0 falls out of the
        # client but survives in the server -> RPC but no disk read.
        disk, system = small_system(client_pages=1, server_pages=4)
        fid = disk.create_file()
        for __ in range(3):
            disk.allocate_page(fid)
        system.get_page(fid, 0)
        system.get_page(fid, 1)
        system.get_page(fid, 0)
        c = disk.counters
        assert c.disk_reads == 2
        assert c.server_hits == 1
        assert c.rpcs == 3

    def test_io_depends_on_largest_cache(self):
        """Paper §3.2: with one client, I/Os depend on the largest cache
        size, independently of its function."""
        def misses(client_pages, server_pages):
            disk, system = small_system(client_pages, server_pages)
            fid = disk.create_file()
            for __ in range(8):
                disk.allocate_page(fid)
            # cyclic access pattern over 8 pages, twice
            for __ in range(2):
                for no in range(8):
                    system.get_page(fid, no)
            return disk.counters.disk_reads

        assert misses(8, 2) == misses(2, 8) == 8
        assert misses(2, 2) == 16

    def test_random_access_miss_rate_tracks_cache_ratio(self):
        import random

        rng = random.Random(7)
        disk, system = small_system(client_pages=20, server_pages=2)
        fid = disk.create_file()
        n_pages = 100
        for __ in range(n_pages):
            disk.allocate_page(fid)
        for __ in range(4000):
            system.get_page(fid, rng.randrange(n_pages))
        snap = disk.counters.snapshot()
        # Expected steady-state miss rate ~ 1 - 20/100 = 0.8
        assert snap.client_miss_rate == pytest.approx(0.8, abs=0.05)

    def test_dirty_write_back_on_shutdown(self):
        disk, system = small_system()
        fid = disk.create_file()
        disk.allocate_page(fid)
        sfile = StorageFile(disk, system, file_id=fid)
        sfile.insert(b"dirty data")
        system.shutdown()
        assert disk.counters.disk_writes >= 1
        assert len(system.client_cache) == 0
        # All pages clean after flush.
        assert not disk.peek_page(fid, 0).dirty

    def test_restart_cold_charges_nothing(self):
        disk, system = small_system()
        fid = disk.create_file()
        disk.allocate_page(fid)
        sfile = StorageFile(disk, system, file_id=fid)
        sfile.insert(b"data")
        disk.counters.reset()
        before = disk.clock.elapsed_s
        system.restart_cold()
        assert disk.clock.elapsed_s == before
        assert disk.counters.disk_writes == 0
        # And the next read is cold again.
        system.get_page(fid, 0)
        assert disk.counters.disk_reads == 1

    def test_dirty_eviction_cascades_to_disk(self):
        disk, system = small_system(client_pages=1, server_pages=1)
        f0 = disk.create_file()
        sfile = StorageFile(disk, system, file_id=f0)
        # Fill several pages with dirty data; caches of 1 page force
        # write-back cascades.
        for __ in range(200):
            sfile.insert(b"x" * 1000)
        system.flush()
        assert disk.counters.disk_writes >= sfile.num_pages - 1

    def test_sequential_scan_reads_each_page_once(self):
        disk, system = small_system(client_pages=4, server_pages=2)
        fid = disk.create_file()
        sfile = StorageFile(disk, system, file_id=fid)
        for __ in range(300):
            sfile.insert(b"y" * 100)
        system.restart_cold()
        disk.counters.reset()
        consumed = sum(1 for __ in sfile.scan())
        assert consumed == 300
        assert disk.counters.disk_reads == sfile.num_pages
