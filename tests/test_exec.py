"""Tests for the execution engine: hash tables, scans, and all six join
algorithms (correctness against a pure-Python reference)."""

from __future__ import annotations

import pytest

from repro.cluster import load_derby
from repro.derby import DerbyConfig, generate
from repro.derby.config import Clustering
from repro.exec import (
    ALGORITHMS,
    QueryHashTable,
    ResultBuilder,
    TreeJoinQuery,
    chj_table_bytes,
    phj_table_bytes,
    select_indexed,
    select_scan,
)
from repro.simtime import Bucket, CostParams, CounterSet, SimClock
from repro.units import MB


# ------------------------------------------------------------- hash table

class TestQueryHashTable:
    def make(self, entry_bytes=64, fixed=0, budget=None, bucket=0):
        clock = SimClock()
        counters = CounterSet()
        table = QueryHashTable(
            clock,
            CostParams(),
            counters,
            entry_bytes,
            fixed_bytes=fixed,
            bucket_bytes=bucket,
            budget_bytes=budget,
        )
        return clock, counters, table

    def test_insert_probe(self):
        __, ___, table = self.make()
        table.insert("a", 1)
        table.insert("a", 2)
        table.insert("b", 3)
        assert table.probe("a") == 1
        assert list(table.probe_all("a")) == [1, 2]
        assert table.probe("zzz") is None
        assert len(table) == 2
        assert table.entries == 3

    def test_size_model(self):
        __, ___, table = self.make(entry_bytes=64, fixed=1000)
        table.insert("a", 1)
        assert table.table_bytes == 1064

    def test_lazy_bucket_size_model(self):
        """CHJ-style accounting: a bucket materializes per distinct key,
        payload bytes per entry."""
        __, ___, table = self.make(entry_bytes=8, bucket=60)
        table.insert("p1", 1)
        table.insert("p1", 2)
        table.insert("p2", 3)
        assert table.table_bytes == 2 * 60 + 3 * 8

    def test_figure10_phj_sizes(self):
        """Reproduce Figure 10's PHJ column exactly (in MB)."""
        assert phj_table_bytes(200) / MB == pytest.approx(0.0122, abs=0.001)
        assert phj_table_bytes(1800) / MB == pytest.approx(0.1098, abs=0.01)
        assert phj_table_bytes(100_000) / MB == pytest.approx(6.1, abs=0.4)
        assert phj_table_bytes(900_000) / MB == pytest.approx(54.9, abs=3)

    def test_figure10_chj_sizes(self):
        """Reproduce Figure 10's CHJ column exactly (in MB)."""
        assert chj_table_bytes(2000, 200_000) / MB == pytest.approx(1.64, abs=0.1)
        assert chj_table_bytes(2000, 1_800_000) / MB == pytest.approx(13.8, abs=0.8)
        assert chj_table_bytes(1_000_000, 300_000) / MB == pytest.approx(59.5, abs=3)
        assert chj_table_bytes(1_000_000, 2_700_000) / MB == pytest.approx(77.8, abs=4)

    def test_no_swap_within_budget(self):
        clock, counters, table = self.make(entry_bytes=64, budget=64 * 100)
        for i in range(100):
            table.insert(i, i)
        assert clock.bucket_s(Bucket.SWAP) == 0.0
        assert counters.swap_faults == 0

    def test_swap_penalty_beyond_budget(self):
        clock, counters, table = self.make(entry_bytes=64, budget=64 * 100)
        for i in range(200):
            table.insert(i, i)
        assert table.swapped_fraction == pytest.approx(0.5, abs=0.01)
        assert clock.bucket_s(Bucket.SWAP) > 0.0
        assert counters.swap_faults > 0

    def test_probe_also_pays_swap(self):
        clock, __, table = self.make(entry_bytes=64, budget=64)
        for i in range(100):
            table.insert(i, i)
        before = clock.bucket_s(Bucket.SWAP)
        table.probe(5)
        assert clock.bucket_s(Bucket.SWAP) > before

    def test_rejects_negative_sizes(self):
        with pytest.raises(ValueError):
            self.make(entry_bytes=-1)


# ------------------------------------------------------------- fixtures

@pytest.fixture(scope="module")
def derby():
    cfg = DerbyConfig(
        n_providers=40,
        n_patients=1200,
        clustering=Clustering.CLASS,
        scale=0.002,
        params=CostParams().scaled(0.002),
    )
    return load_derby(cfg)


@pytest.fixture(scope="module")
def logical(derby):
    return generate(derby.config)


def reference_join(derby, logical, k1: int, k2: int) -> list[tuple]:
    """Ground truth computed from the logical database."""
    out = []
    for provider in logical.providers:
        if provider.upin >= k2:
            continue
        for j in provider.patient_idxs:
            patient = logical.patients[j]
            if patient.mrn < k1:
                out.append((provider.name, patient.age))
    return sorted(out)


def make_query(derby, k1: int, k2: int) -> TreeJoinQuery:
    return TreeJoinQuery(
        db=derby.db,
        parent_index=derby.by_upin,
        child_index=derby.by_mrn,
        parent_high=k2,
        child_high=k1,
        n_parents=len(derby.provider_rids),
    )


# ------------------------------------------------------------- scans

class TestSelections:
    def test_select_scan_matches_reference(self, derby, logical):
        derby.start_cold_run()
        k = derby.config.num_threshold(10)
        result = select_scan(
            derby.db,
            derby.patients,
            "num",
            lambda v: v > k,
            "age",
        )
        expected = sorted(p.age for p in logical.patients if p.num > k)
        assert sorted(result.rows) == expected
        assert result.scanned == 1200

    def test_scan_io_independent_of_selectivity(self, derby):
        """Paper §4.2: without an index the I/O count does not depend on
        the selectivity."""
        def reads(sel_pct):
            derby.start_cold_run()
            k = derby.config.num_threshold(sel_pct)
            select_scan(derby.db, derby.patients, "num", lambda v: v > k, "age")
            return derby.db.counters.disk_reads

        assert reads(0.5) == reads(90)

    def test_select_indexed_matches_scan(self, derby):
        k = derby.config.num_threshold(30)
        derby.start_cold_run()
        by_scan = select_scan(
            derby.db, derby.patients, "num", lambda v: v > k, "age"
        )
        derby.start_cold_run()
        by_index = select_indexed(
            derby.db, derby.by_num, k, None, "age", include_low=False
        )
        assert sorted(by_index.rows) == sorted(by_scan.rows)

    def test_sorted_index_scan_same_rows_less_random_io(self, derby):
        k = derby.config.num_threshold(60)
        derby.start_cold_run()
        unsorted = select_indexed(
            derby.db, derby.by_num, k, None, "age", include_low=False
        )
        unsorted_reads = derby.db.counters.disk_reads
        derby.start_cold_run()
        sorted_scan = select_indexed(
            derby.db, derby.by_num, k, None, "age",
            sorted_rids=True, include_low=False,
        )
        sorted_reads = derby.db.counters.disk_reads
        assert sorted(sorted_scan.rows) == sorted(unsorted.rows)
        assert sorted_reads < unsorted_reads

    def test_sorted_scan_charges_sort_bucket(self, derby):
        derby.start_cold_run()
        k = derby.config.num_threshold(90)
        select_indexed(
            derby.db, derby.by_num, k, None, "age",
            sorted_rids=True, include_low=False,
        )
        assert derby.db.clock.bucket_s(Bucket.SORT) > 0

    def test_transactional_result_costs_more(self, derby):
        k = derby.config.num_threshold(50)
        derby.start_cold_run()
        select_indexed(derby.db, derby.by_num, k, None, "age",
                       include_low=False, transactional=True)
        txn_result = derby.db.clock.bucket_s(Bucket.RESULT)
        derby.start_cold_run()
        select_indexed(derby.db, derby.by_num, k, None, "age",
                       include_low=False, transactional=False)
        assert derby.db.clock.bucket_s(Bucket.RESULT) < txn_result


# ------------------------------------------------------------- joins

class TestJoinAlgorithms:
    @pytest.mark.parametrize("algo", sorted(ALGORITHMS))
    @pytest.mark.parametrize("sel", [(10, 10), (10, 90), (90, 10), (90, 90)])
    def test_all_algorithms_match_reference(self, derby, logical, algo, sel):
        sel_pat, sel_prov = sel
        k1 = derby.config.mrn_threshold(sel_pat)
        k2 = derby.config.upin_threshold(sel_prov)
        derby.start_cold_run()
        rows = ALGORITHMS[algo](make_query(derby, k1, k2))
        assert sorted(rows) == reference_join(derby, logical, k1, k2)

    def test_result_builder_counts(self, derby):
        builder = ResultBuilder(derby.db)
        builder.append(("x", 1))
        assert len(builder) == 1

    def test_every_algorithm_charges_time(self, derby):
        k1 = derby.config.mrn_threshold(50)
        k2 = derby.config.upin_threshold(50)
        for algo, fn in ALGORITHMS.items():
            derby.start_cold_run()
            fn(make_query(derby, k1, k2))
            assert derby.db.clock.elapsed_s > 0, algo

    def test_nl_reads_more_than_phj_at_high_selectivity(self, derby):
        """Class clustering: NL's random child accesses dwarf PHJ's
        sequential scans (Figure 11's pattern)."""
        k1 = derby.config.mrn_threshold(90)
        k2 = derby.config.upin_threshold(90)
        derby.start_cold_run()
        ALGORITHMS["NL"](make_query(derby, k1, k2))
        nl_seconds = derby.db.clock.elapsed_s
        derby.start_cold_run()
        ALGORITHMS["PHJ"](make_query(derby, k1, k2))
        phj_seconds = derby.db.clock.elapsed_s
        assert nl_seconds > 2 * phj_seconds

    def test_hybrid_never_slower_than_phj_when_swapping(self):
        """A 1:3-shaped database where the PHJ table exceeds the memory
        budget: hybrid partitioning must beat OS thrashing."""
        cfg = DerbyConfig.db_1to3(scale=0.003)
        derby = load_derby(cfg)
        k1 = cfg.mrn_threshold(90)
        k2 = cfg.upin_threshold(90)
        query = TreeJoinQuery(
            db=derby.db,
            parent_index=derby.by_upin,
            child_index=derby.by_mrn,
            parent_high=k2,
            child_high=k1,
            n_parents=cfg.n_providers,
        )
        derby.start_cold_run()
        ALGORITHMS["PHJ"](query)
        phj_seconds = derby.db.clock.elapsed_s
        swap_seconds = derby.db.clock.bucket_s(Bucket.SWAP)
        assert swap_seconds > 0, "test setup must force swapping"
        derby.start_cold_run()
        ALGORITHMS["PHJ-HYBRID"](query)
        hybrid_seconds = derby.db.clock.elapsed_s
        assert derby.db.clock.bucket_s(Bucket.SWAP) == 0
        assert hybrid_seconds < phj_seconds
