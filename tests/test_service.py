"""Tests for the multi-client query service: cooperative scheduling,
the lock wait/deadlock protocol, sessions and workload mixes."""

from __future__ import annotations

import pytest

from repro.cluster import load_derby
from repro.derby import DerbyConfig
from repro.errors import DeadlockError, LockTimeoutError
from repro.service import (
    CooperativeScheduler,
    MixConfig,
    QueryService,
    WorkloadMixer,
)
from repro.simtime import Bucket, CostParams, SimClock
from repro.storage.rid import Rid
from repro.txn import LockManager, LockMode

A, B, C = Rid(0, 0, 0), Rid(0, 0, 1), Rid(0, 0, 2)


def make_lock_world(timeout_s: float | None = None):
    clock = SimClock()
    locks = LockManager(clock, CostParams(), timeout_s=timeout_s)
    scheduler = CooperativeScheduler(clock, locks)
    return clock, locks, scheduler


@pytest.fixture(scope="module")
def tiny_derby():
    """The smallest 1:3 database — enough for real mixes, loads fast."""
    return load_derby(DerbyConfig.db_1to3(scale=0.00001))


def fresh_tiny_derby():
    return load_derby(DerbyConfig.db_1to3(scale=0.00001))


# ---------------------------------------------------------------- scheduler


class TestScheduler:
    def test_round_robin_interleaving_is_deterministic(self):
        def trace_run():
            clock, __, scheduler = make_lock_world()
            trace = []

            def body(name):
                def fn():
                    for i in range(3):
                        trace.append(f"{name}{i}")
                        scheduler.yield_point()
                return fn

            scheduler.spawn("a", body("a"))
            scheduler.spawn("b", body("b"))
            scheduler.run()
            return trace

        first, second = trace_run(), trace_run()
        assert first == second
        assert first[:4] == ["a0", "b0", "a1", "b1"]

    def test_task_errors_are_captured(self):
        __, __, scheduler = make_lock_world()

        def boom():
            raise RuntimeError("boom")

        scheduler.spawn("bad", boom)
        scheduler.spawn("good", lambda: "ok")
        tasks = scheduler.run()
        assert isinstance(tasks[0].error, RuntimeError)
        assert tasks[1].result == "ok"


# ---------------------------------------------------------------- lock waits


class TestLockWaitProtocol:
    def test_fifo_fairness_shared_does_not_overtake_exclusive(self):
        """T1 holds S; T2 queues X; a later S request (T3) must wait
        behind the X instead of piggybacking on T1's S lock."""
        __, locks, scheduler = make_lock_world()
        order = []

        def t1():
            locks.acquire(1, A, LockMode.SHARED)
            scheduler.yield_point()  # let T2 and T3 queue up
            assert [t for t, __ in locks.waiters(A)] == [2, 3]
            locks.release_all(1)

        def t2():
            locks.acquire(2, A, LockMode.EXCLUSIVE)
            order.append(2)
            locks.release_all(2)

        def t3():
            locks.acquire(3, A, LockMode.SHARED)
            order.append(3)
            locks.release_all(3)

        scheduler.spawn("t1", t1)
        scheduler.spawn("t2", t2)
        scheduler.spawn("t3", t3)
        tasks = scheduler.run()
        assert [t.error for t in tasks] == [None, None, None]
        assert order == [2, 3]

    def test_shared_to_exclusive_upgrade_waits_for_other_readers(self):
        events = []
        __, locks, scheduler = make_lock_world()

        def upgrader():
            locks.acquire(1, A, LockMode.SHARED)
            scheduler.yield_point()  # T2 takes S too
            locks.acquire(1, A, LockMode.EXCLUSIVE)  # waits for T2
            events.append("upgraded")
            assert locks.held(A) == (LockMode.EXCLUSIVE, {1})
            locks.release_all(1)

        def reader():
            locks.acquire(2, A, LockMode.SHARED)
            scheduler.yield_point()  # T1 is now waiting to upgrade
            events.append("reader-release")
            locks.release_all(2)

        scheduler.spawn("up", upgrader)
        scheduler.spawn("rd", reader)
        tasks = scheduler.run()
        assert [t.error for t in tasks] == [None, None]
        assert events == ["reader-release", "upgraded"]

    def test_competing_upgrades_deadlock_aborts_youngest(self):
        """Two S holders both requesting X wait on each other — a
        2-cycle; the youngest (txn 2) must be the victim."""
        outcome = {}
        __, locks, scheduler = make_lock_world()

        def body(txn_id):
            def fn():
                locks.acquire(txn_id, A, LockMode.SHARED)
                scheduler.yield_point()
                try:
                    locks.acquire(txn_id, A, LockMode.EXCLUSIVE)
                    outcome[txn_id] = "upgraded"
                except DeadlockError:
                    outcome[txn_id] = "victim"
                locks.release_all(txn_id)
            return fn

        scheduler.spawn("t1", body(1))
        scheduler.spawn("t2", body(2))
        tasks = scheduler.run()
        assert [t.error for t in tasks] == [None, None]
        assert outcome == {1: "upgraded", 2: "victim"}

    def test_lock_timeout_aborts_waiter(self):
        clock, locks, scheduler = make_lock_world(timeout_s=1.0)
        outcome = {}

        def holder():
            locks.acquire(1, A, LockMode.EXCLUSIVE)
            scheduler.yield_point()           # T2 starts waiting
            clock.charge_s(Bucket.CPU, 5.0)   # simulated time passes
            scheduler.yield_point()           # switch fires the timeout
            locks.release_all(1)

        def waiter():
            try:
                locks.acquire(2, A, LockMode.EXCLUSIVE)
                outcome[2] = "granted"
                locks.release_all(2)
            except LockTimeoutError:
                outcome[2] = "timeout"

        scheduler.spawn("holder", holder)
        scheduler.spawn("waiter", waiter)
        tasks = scheduler.run()
        assert [t.error for t in tasks] == [None, None]
        assert outcome == {2: "timeout"}
        assert locks.waiting_count == 0

    def test_three_session_deadlock_cycle(self):
        """T1:A T2:B T3:C, then T1->B, T2->C, T3->A: a 3-cycle.  The
        youngest (T3) aborts; the others complete."""
        outcome = {}
        __, locks, scheduler = make_lock_world()
        held = {1: A, 2: B, 3: C}
        wanted = {1: B, 2: C, 3: A}

        def body(txn_id):
            def fn():
                locks.acquire(txn_id, held[txn_id], LockMode.EXCLUSIVE)
                scheduler.yield_point()  # everyone holds their first lock
                try:
                    locks.acquire(txn_id, wanted[txn_id], LockMode.EXCLUSIVE)
                    outcome[txn_id] = "ok"
                except DeadlockError:
                    outcome[txn_id] = "victim"
                locks.release_all(txn_id)
            return fn

        for txn_id in (1, 2, 3):
            scheduler.spawn(f"t{txn_id}", body(txn_id))
        tasks = scheduler.run()
        assert [t.error for t in tasks] == [None, None, None]
        assert outcome == {1: "ok", 2: "ok", 3: "victim"}
        assert locks.lock_count == 0
        assert locks.waiting_count == 0


# ---------------------------------------------------------------- service


class TestQueryService:
    def test_two_session_deadlock_youngest_aborts_survivor_commits(
        self, tiny_derby
    ):
        derby = tiny_derby
        derby.start_cold_run()
        service = QueryService(derby)
        alice = service.open_session("alice")
        bob = service.open_session("bob")
        rid_a, rid_b = derby.patient_rids[0], derby.patient_rids[1]
        outcome = {}

        def make_body(session, first, second, marker_age):
            def body():
                session.begin()
                session.write_lock(first)
                session.pause()
                try:
                    session.write_lock(second)
                    session.update_scalar(first, "age", marker_age)
                    session.update_scalar(second, "age", marker_age)
                    session.commit()
                    outcome[session.name] = "committed"
                except DeadlockError:
                    session.abort()
                    outcome[session.name] = "victim"
            return body

        service.spawn(alice, make_body(alice, rid_a, rid_b, 41))
        service.spawn(bob, make_body(bob, rid_b, rid_a, 42))
        tasks = service.run()
        service.close()

        assert [t.error for t in tasks] == [None, None]
        # bob began second -> youngest -> victim; alice commits.
        assert outcome == {"alice": "committed", "bob": "victim"}
        om = derby.db.manager
        assert om.get_attr_at(rid_a, "age") == 41
        assert om.get_attr_at(rid_b, "age") == 41
        assert service.txm.committed == 1
        assert service.txm.aborted == 1
        assert service.txm.locks.lock_count == 0

    def test_close_restores_single_client_configuration(self, tiny_derby):
        derby = tiny_derby
        base_cache = derby.db.system.client_cache
        base_handles = derby.db.handles
        service = QueryService(derby, server_cache_pages=4)
        session = service.open_session("s")
        service.spawn(session, lambda: session.execute(
            "select count(p) from p in Patients where p.mrn < 10"
        ))
        service.run()
        service.close()
        assert derby.db.system.client_cache is base_cache
        assert derby.db.handles is base_handles
        assert derby.db.manager.handles is base_handles
        assert derby.db.system.on_fault is None

    def test_sessions_have_private_client_tiers(self, tiny_derby):
        derby = tiny_derby
        derby.start_cold_run()
        service = QueryService(derby)
        s1 = service.open_session("one")
        s2 = service.open_session("two")
        query = "select count(p) from p in Providers where p.upin < 100"
        service.spawn(s1, lambda: s1.execute(query))
        service.spawn(s2, lambda: s2.execute(query))
        service.run()
        service.close()
        assert s1.cache is not s2.cache
        # Both sessions did real page traffic through their own tier.
        assert s1.metrics.meters.client_faults > 0
        assert s2.metrics.meters.client_faults > 0
        # The second reader of a page hits the *shared* server cache.
        assert (
            s1.metrics.meters.server_hits + s2.metrics.meters.server_hits > 0
        )


# ---------------------------------------------------------------- workload


class TestWorkloadMixer:
    def test_mix_runs_and_records_stats(self, tiny_derby):
        from repro.stats import StatsDatabase

        stats = StatsDatabase()
        config = MixConfig.from_clients(3, ops_per_client=2, seed=3)
        report = WorkloadMixer(tiny_derby, config, stats=stats).run()
        assert report.committed == 3 * 2
        assert len(stats) == 3
        rows = stats.rows()
        assert {r.algo for r in rows} == {
            "mix-navigator", "mix-scanner", "mix-updater"
        }
        assert all(r.elapsed_s > 0 for r in rows)
        text = str(report.table())
        assert "aggregate" in text and "navigator0" in text

    def test_mix_is_deterministic_across_fresh_databases(self):
        config = MixConfig.from_clients(4, ops_per_client=2, seed=9)
        r1 = WorkloadMixer(fresh_tiny_derby(), config).run()
        r2 = WorkloadMixer(fresh_tiny_derby(), config).run()
        assert r1.elapsed_s == pytest.approx(r2.elapsed_s)
        assert r1.committed == r2.committed
        assert r1.aborted == r2.aborted
        assert r1.deadlocks == r2.deadlocks
        assert [s.metrics.latencies_s for s in r1.sessions] == [
            s.metrics.latencies_s for s in r2.sessions
        ]

    def test_from_clients_deals_round_robin(self):
        config = MixConfig.from_clients(8)
        assert (config.navigators, config.scanners, config.updaters) == (
            3, 3, 2
        )
        with pytest.raises(Exception):
            MixConfig.from_clients(0)


# ---------------------------------------------------------------- CLI


class TestMixCli:
    def test_mix_command_end_to_end(self, capsys):
        from repro.cli import main

        assert main([
            "mix", "--db", "1to3", "--scale", "0.00001",
            "--clients", "2", "--ops", "1",
        ]) == 0
        out = capsys.readouterr().out
        assert "aggregate" in out
        assert "stats database: 2 Stat row(s) recorded" in out
