"""simlint: fixtures trigger each rule, suppressions and baselines work,
and — the point of the whole exercise — ``src/repro`` is clean under the
shipped configuration."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.lint import Baseline, Finding, LintConfig, lint_paths, load_config
from repro.lint.cli import main as lint_main
from repro.lint.config import config_from_mapping

REPO_ROOT = Path(__file__).resolve().parents[1]
FIXTURES = Path(__file__).resolve().parent / "lint_fixtures"


def lint_fixture(name: str, select: tuple[str, ...]) -> list[Finding]:
    config = LintConfig(select=select)
    return lint_paths((str(FIXTURES / name),), config).findings


# -- one known violation per rule ------------------------------------------


def test_det_flags_wall_clock():
    findings = lint_fixture("det_wallclock.py", ("DET",))
    assert [f.rule for f in findings] == ["DET"]
    assert findings[0].line == 7
    assert "SimClock" in findings[0].message


def test_det_flags_set_iteration():
    findings = lint_fixture("det_setorder.py", ("DET",))
    assert [f.rule for f in findings] == ["DET"]
    assert findings[0].line == 6
    assert "sorted()" in findings[0].message


def test_pair_flags_unguarded_release():
    findings = lint_fixture("pair_leak.py", ("PAIR",))
    assert [f.rule for f in findings] == ["PAIR"]
    assert findings[0].line == 5
    assert "try/finally" in findings[0].message
    assert findings[0].symbol.endswith("read_attr")  # not read_attr_safely


def test_exc_flags_swallowing_broad_except():
    findings = lint_fixture("exc_swallow.py", ("EXC",))
    assert [f.rule for f in findings] == ["EXC"]
    assert findings[0].line == 7  # the re-raising handler is not flagged


def test_charge_flags_uncharged_page_touch():
    findings = lint_fixture("repro/storage/uncharged_read.py", ("CHARGE",))
    assert [f.rule for f in findings] == ["CHARGE"]
    assert "uncharged_read" in findings[0].message
    # charged_read reaches charge_ms; _private_helper is out of scope
    assert len(findings) == 1


def test_layer_flags_upward_import():
    findings = lint_fixture("repro/storage/imports_upward.py", ("LAYER",))
    assert [f.rule for f in findings] == ["LAYER"]
    assert "'storage'" in findings[0].message
    assert "'exec'" in findings[0].message


def test_clean_fixture_is_clean():
    assert lint_fixture("clean.py", ("DET", "CHARGE", "LAYER", "PAIR", "EXC")) == []


# -- suppressions -----------------------------------------------------------


def test_suppression_on_line_and_line_above():
    config = LintConfig(select=("DET",))
    result = lint_paths((str(FIXTURES / "suppressed_det.py"),), config)
    assert result.findings == []
    assert result.suppressed == 2
    assert [f.rule for f in result.suppressed_findings] == ["DET", "DET"]


def test_suppression_is_rule_specific(tmp_path):
    source = FIXTURES.joinpath("det_wallclock.py").read_text()
    bad = tmp_path / "wrong_rule.py"
    bad.write_text(source.replace("# the violation", "# simlint: ok[PAIR] wrong rule"))
    config = LintConfig(select=("DET",))
    result = lint_paths((str(bad),), config)
    assert [f.rule for f in result.findings] == ["DET"]


def test_wildcard_suppression(tmp_path):
    source = FIXTURES.joinpath("det_wallclock.py").read_text()
    bad = tmp_path / "wildcard.py"
    bad.write_text(source.replace("# the violation", "# simlint: ok[*] anything goes"))
    config = LintConfig(select=("DET",))
    assert lint_paths((str(bad),), config).findings == []


# -- baseline round-trip ----------------------------------------------------


def test_baseline_round_trip(tmp_path):
    findings = lint_fixture("det_wallclock.py", ("DET",))
    assert findings
    path = tmp_path / "baseline.json"
    Baseline.from_findings(findings).save(path)

    loaded = Baseline.load(path)
    new, baselined = loaded.filter(findings)
    assert new == []
    assert baselined == len(findings)

    # a different finding is NOT covered
    other = lint_fixture("det_setorder.py", ("DET",))
    new, baselined = loaded.filter(other)
    assert new == other
    assert baselined == 0


def test_baseline_counts_cap_occurrences():
    finding = lint_fixture("det_wallclock.py", ("DET",))[0]
    baseline = Baseline.from_findings([finding])
    new, baselined = baseline.filter([finding, finding])
    assert baselined == 1
    assert new == [finding]


def test_fingerprint_ignores_line_numbers():
    a = Finding("DET", "x.py", 10, 0, "msg", symbol="m:f")
    b = Finding("DET", "x.py", 99, 4, "msg", symbol="m:f")
    c = Finding("DET", "x.py", 10, 0, "other msg", symbol="m:f")
    assert a.fingerprint == b.fingerprint
    assert a.fingerprint != c.fingerprint


def test_baseline_rejects_unknown_version(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text(json.dumps({"version": 99, "entries": {}}))
    with pytest.raises(ValueError):
        Baseline.load(path)


# -- configuration ----------------------------------------------------------


def test_config_from_mapping_overrides():
    config = config_from_mapping(
        {
            "paths": ["src/other"],
            "select": ["DET"],
            "layer_allow": {"storage": ["exec"]},
            "pair_pairs": [["open", "close"]],
        },
        root="/somewhere",
    )
    assert config.paths == ("src/other",)
    assert config.select == ("DET",)
    assert config.layer_allow == {"storage": ("exec",)}
    assert config.pair_pairs == (("open", "close"),)
    assert config.root == "/somewhere"


def test_layer_allow_grants_upward_edge():
    config = LintConfig(select=("LAYER",), layer_allow={"storage": ("exec",)})
    findings = lint_paths(
        (str(FIXTURES / "repro/storage/imports_upward.py"),), config
    ).findings
    assert findings == []


# -- command line -----------------------------------------------------------


def test_cli_exits_nonzero_on_fixtures(capsys):
    code = lint_main(["--no-config", str(FIXTURES)])
    out = capsys.readouterr().out
    assert code == 1
    for rule in ("DET", "CHARGE", "LAYER", "PAIR", "EXC"):
        assert rule in out


def test_cli_exits_zero_on_clean_file(capsys):
    assert lint_main(["--no-config", str(FIXTURES / "clean.py")]) == 0
    assert "0 findings" in capsys.readouterr().out


def test_cli_json_format(capsys):
    code = lint_main(
        ["--no-config", "--format", "json", str(FIXTURES / "det_wallclock.py")]
    )
    assert code == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["files_checked"] == 1
    assert [f["rule"] for f in payload["findings"]] == ["DET"]
    assert payload["findings"][0]["fingerprint"]


def test_cli_unknown_rule_is_usage_error(capsys):
    code = lint_main(["--no-config", "--rules", "NOPE", str(FIXTURES / "clean.py")])
    assert code == 2
    assert "unknown rule" in capsys.readouterr().err


def test_cli_rules_subset(capsys):
    code = lint_main(
        ["--no-config", "--rules", "EXC", str(FIXTURES / "det_wallclock.py")]
    )
    assert code == 0


def test_cli_write_and_use_baseline(tmp_path, capsys):
    baseline = tmp_path / "baseline.json"
    target = str(FIXTURES / "det_wallclock.py")
    assert lint_main(["--no-config", "--write-baseline", str(baseline), target]) == 0
    capsys.readouterr()
    code = lint_main(["--no-config", "--baseline", str(baseline), target])
    out = capsys.readouterr().out
    assert code == 0
    assert "baselined" in out


# -- the meta-test: this repository is clean --------------------------------


def test_src_repro_is_clean_under_shipped_config():
    config = load_config(REPO_ROOT)
    assert config.paths == ("src/repro",)
    assert config.baseline is None, "the tree must stay baseline-free"
    result = lint_paths(None, config)
    assert result.findings == [], "\n".join(
        f.render() for f in result.findings
    )
    assert result.files_checked > 90
