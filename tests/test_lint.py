"""simlint: fixtures trigger each rule, suppressions and baselines work,
and — the point of the whole exercise — ``src/repro`` is clean under the
shipped configuration."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.lint import Baseline, Finding, LintConfig, lint_paths, load_config
from repro.lint.cli import main as lint_main
from repro.lint.config import config_from_mapping

REPO_ROOT = Path(__file__).resolve().parents[1]
FIXTURES = Path(__file__).resolve().parent / "lint_fixtures"


def lint_fixture(name: str, select: tuple[str, ...]) -> list[Finding]:
    config = LintConfig(select=select)
    return lint_paths((str(FIXTURES / name),), config).findings


# -- one known violation per rule ------------------------------------------


def test_det_flags_wall_clock():
    findings = lint_fixture("det_wallclock.py", ("DET",))
    assert [f.rule for f in findings] == ["DET"]
    assert findings[0].line == 7
    assert "SimClock" in findings[0].message


def test_det_flags_set_iteration():
    findings = lint_fixture("det_setorder.py", ("DET",))
    assert [f.rule for f in findings] == ["DET"]
    assert findings[0].line == 6
    assert "sorted()" in findings[0].message


def test_pair_flags_unguarded_release():
    findings = lint_fixture("pair_leak.py", ("PAIR",))
    assert [f.rule for f in findings] == ["PAIR"]
    assert findings[0].line == 5
    assert "try/finally" in findings[0].message
    assert findings[0].symbol.endswith("read_attr")  # not read_attr_safely


def test_exc_flags_swallowing_broad_except():
    findings = lint_fixture("exc_swallow.py", ("EXC",))
    assert [f.rule for f in findings] == ["EXC"]
    assert findings[0].line == 7  # the re-raising handler is not flagged


def test_charge_flags_uncharged_page_touch():
    findings = lint_fixture("repro/storage/uncharged_read.py", ("CHARGE",))
    assert [f.rule for f in findings] == ["CHARGE"]
    assert "uncharged_read" in findings[0].message
    # charged_read reaches charge_ms; _private_helper is out of scope
    assert len(findings) == 1


def test_layer_flags_upward_import():
    findings = lint_fixture("repro/storage/imports_upward.py", ("LAYER",))
    assert [f.rule for f in findings] == ["LAYER"]
    assert "'storage'" in findings[0].message
    assert "'exec'" in findings[0].message


def test_clean_fixture_is_clean():
    assert (
        lint_fixture(
            "clean.py",
            ("DET", "CHARGE", "LAYER", "PAIR", "EXC", "ATOM", "PROTO", "ESCAPE"),
        )
        == []
    )


# -- interprocedural rules: ATOM / PROTO / ESCAPE ---------------------------


def test_atom_flags_cross_yield_rmw():
    findings = lint_fixture("atom", ("ATOM",))
    assert {f.rule for f in findings} == {"ATOM"}
    bad = [f for f in findings if f.path.endswith("rmw_bad.py")]
    # the seeded lost update, the stale check-then-append, the yielding
    # augmented assignment — and nothing in the bracketed counterparts
    assert [f.line for f in bad] == [8, 20, 23]
    assert not any(f.path.endswith("rmw_good.py") for f in findings)
    assert "yield_point" in bad[0].message
    assert "may-yield" in bad[1].message


def test_proto_flags_txn_lifecycle():
    findings = lint_fixture("proto/txn_bad.py", ("PROTO",))
    assert {f.rule for f in findings} == {"PROTO"}
    assert [f.line for f in findings] == [5, 11, 20, 28]
    assert "still open" in findings[0].message      # branch leak
    assert "still open" in findings[1].message      # loop fall-through leak
    assert "can raise" in findings[2].message       # unprotected hazard
    assert "exactly once" in findings[3].message    # double completion


def test_proto_txn_good_is_clean():
    assert lint_fixture("proto/txn_good.py", ("PROTO",)) == []


def test_proto_flags_si_snapshot_leaks():
    findings = lint_fixture("proto/si_bad.py", ("PROTO",))
    assert {f.rule for f in findings} == {"PROTO"}
    assert [f.line for f in findings] == [5, 11]
    for f in findings:
        assert f.message.startswith('begin(isolation="si")')
        assert "pins the MVCC GC horizon" in f.message


def test_proto_si_good_is_clean():
    assert lint_fixture("proto/si_good.py", ("PROTO",)) == []


def test_proto_flags_wal_force_rule():
    findings = lint_fixture("proto/wal_bad.py", ("PROTO",))
    assert [f.line for f in findings] == [5, 11]
    assert "flush" in findings[0].message
    assert "release" in findings[1].message


def test_proto_wal_good_is_clean():
    assert lint_fixture("proto/wal_good.py", ("PROTO",)) == []


def test_proto_flags_missing_decision_log():
    findings = lint_fixture("proto/twopc_bad.py", ("PROTO",))
    assert [f.line for f in findings] == [8, 13, 17]
    assert "decision" in findings[0].message        # direct branch commit
    assert "decision" in findings[1].message        # commit handed out as callback
    assert "resolve_in_doubt" in findings[2].message


def test_proto_twopc_good_is_clean():
    assert lint_fixture("proto/twopc_good.py", ("PROTO",)) == []


def test_proto_flags_unfenced_promotion():
    findings = lint_fixture("proto/failover_bad.py", ("PROTO",))
    assert {f.rule for f in findings} == {"PROTO"}
    assert [f.line for f in findings] == [5, 10, 14]
    assert "no durable epoch fence" in findings[0].message
    assert "never flushed" in findings[1].message
    assert "no durable epoch fence" in findings[2].message


def test_proto_failover_good_is_clean():
    assert lint_fixture("proto/failover_good.py", ("PROTO",)) == []


def test_escape_flags_leaking_handles():
    findings = lint_fixture("escape/escape_bad.py", ("ESCAPE",))
    assert {f.rule for f in findings} == {"ESCAPE"}
    assert [f.line for f in findings] == [6, 12, 18, 24, 30]
    assert "returned" in findings[0].message
    assert "yielded" in findings[1].message
    assert "longer-lived state" in findings[2].message
    assert "append()" in findings[3].message
    assert "after its with block" in findings[4].message


def test_escape_good_is_clean():
    assert lint_fixture("escape/escape_good.py", ("ESCAPE",)) == []


def test_callgraph_may_yield_closure(tmp_path):
    src = tmp_path / "chain.py"
    src.write_text(
        "def leaf(sched):\n"
        "    sched.yield_point()\n"
        "\n"
        "def middle(sched):\n"
        "    leaf(sched)\n"
        "\n"
        "def top(sched):\n"
        "    middle(sched)\n"
        "\n"
        "def pure(x):\n"
        "    return x + 1\n"
    )
    result = lint_paths((str(src),), LintConfig(select=("ATOM",)))
    graph = result.project.callgraph
    funcs = {info.qualname: info for info in result.project.functions}
    assert graph.may_yield(funcs["leaf"])
    assert graph.may_yield(funcs["top"])  # transitive, two hops
    assert not graph.may_yield(funcs["pure"])
    chain = graph.yield_chain(funcs["top"])
    assert "middle" in chain and "yield_point" in chain
    dot = graph.to_dot()
    assert "digraph" in dot
    assert "may-yield" in dot


# -- suppressions -----------------------------------------------------------


def test_suppression_on_line_and_line_above():
    config = LintConfig(select=("DET",))
    result = lint_paths((str(FIXTURES / "suppressed_det.py"),), config)
    assert result.findings == []
    assert result.suppressed == 2
    assert [f.rule for f in result.suppressed_findings] == ["DET", "DET"]


def test_suppression_is_rule_specific(tmp_path):
    source = FIXTURES.joinpath("det_wallclock.py").read_text()
    bad = tmp_path / "wrong_rule.py"
    bad.write_text(source.replace("# the violation", "# simlint: ok[PAIR] wrong rule"))
    config = LintConfig(select=("DET",))
    result = lint_paths((str(bad),), config)
    assert [f.rule for f in result.findings] == ["DET"]


def test_wildcard_suppression(tmp_path):
    source = FIXTURES.joinpath("det_wallclock.py").read_text()
    bad = tmp_path / "wildcard.py"
    bad.write_text(source.replace("# the violation", "# simlint: ok[*] anything goes"))
    config = LintConfig(select=("DET",))
    assert lint_paths((str(bad),), config).findings == []


# -- baseline round-trip ----------------------------------------------------


def test_baseline_round_trip(tmp_path):
    findings = lint_fixture("det_wallclock.py", ("DET",))
    assert findings
    path = tmp_path / "baseline.json"
    Baseline.from_findings(findings).save(path)

    loaded = Baseline.load(path)
    new, baselined = loaded.filter(findings)
    assert new == []
    assert baselined == len(findings)

    # a different finding is NOT covered
    other = lint_fixture("det_setorder.py", ("DET",))
    new, baselined = loaded.filter(other)
    assert new == other
    assert baselined == 0


def test_baseline_counts_cap_occurrences():
    finding = lint_fixture("det_wallclock.py", ("DET",))[0]
    baseline = Baseline.from_findings([finding])
    new, baselined = baseline.filter([finding, finding])
    assert baselined == 1
    assert new == [finding]


def test_fingerprint_ignores_line_numbers():
    a = Finding("DET", "x.py", 10, 0, "msg", symbol="m:f")
    b = Finding("DET", "x.py", 99, 4, "msg", symbol="m:f")
    c = Finding("DET", "x.py", 10, 0, "other msg", symbol="m:f")
    assert a.fingerprint == b.fingerprint
    assert a.fingerprint != c.fingerprint


def test_baseline_rejects_unknown_version(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text(json.dumps({"version": 99, "entries": {}}))
    with pytest.raises(ValueError):
        Baseline.load(path)


# -- configuration ----------------------------------------------------------


def test_config_from_mapping_overrides():
    config = config_from_mapping(
        {
            "paths": ["src/other"],
            "select": ["DET"],
            "layer_allow": {"storage": ["exec"]},
            "pair_pairs": [["open", "close"]],
        },
        root="/somewhere",
    )
    assert config.paths == ("src/other",)
    assert config.select == ("DET",)
    assert config.layer_allow == {"storage": ("exec",)}
    assert config.pair_pairs == (("open", "close"),)
    assert config.root == "/somewhere"


def test_layer_allow_grants_upward_edge():
    config = LintConfig(select=("LAYER",), layer_allow={"storage": ("exec",)})
    findings = lint_paths(
        (str(FIXTURES / "repro/storage/imports_upward.py"),), config
    ).findings
    assert findings == []


# -- command line -----------------------------------------------------------


def test_cli_exits_nonzero_on_fixtures(capsys):
    code = lint_main(["--no-config", str(FIXTURES)])
    out = capsys.readouterr().out
    assert code == 1
    for rule in (
        "DET", "CHARGE", "LAYER", "PAIR", "EXC", "ATOM", "PROTO", "ESCAPE"
    ):
        assert rule in out


def test_cli_exits_zero_on_clean_file(capsys):
    assert lint_main(["--no-config", str(FIXTURES / "clean.py")]) == 0
    assert "0 findings" in capsys.readouterr().out


def test_cli_json_format(capsys):
    code = lint_main(
        ["--no-config", "--format", "json", str(FIXTURES / "det_wallclock.py")]
    )
    assert code == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["files_checked"] == 1
    assert [f["rule"] for f in payload["findings"]] == ["DET"]
    assert payload["findings"][0]["fingerprint"]


def test_cli_sarif_format(capsys):
    code = lint_main(
        ["--no-config", "--format", "sarif", str(FIXTURES / "det_wallclock.py")]
    )
    assert code == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["version"] == "2.1.0"
    run = payload["runs"][0]
    assert run["tool"]["driver"]["name"] == "simlint"
    rule_ids = [r["id"] for r in run["tool"]["driver"]["rules"]]
    for rule in ("ATOM", "PROTO", "ESCAPE"):
        assert rule in rule_ids
    results = run["results"]
    assert [r["ruleId"] for r in results] == ["DET"]
    region = results[0]["locations"][0]["physicalLocation"]["region"]
    assert region["startLine"] == 7
    assert results[0]["partialFingerprints"]["simlint/v1"]


def test_cli_timing_reports_per_rule(capsys):
    code = lint_main(["--no-config", "--timing", str(FIXTURES / "clean.py")])
    assert code == 0
    err = capsys.readouterr().err
    assert "simlint: timing" in err
    for name in ("parse", "callgraph", "ATOM", "PROTO", "ESCAPE", "total"):
        assert name in err


def test_cli_dump_graph(tmp_path, capsys):
    dot = tmp_path / "graph.dot"
    code = lint_main(
        ["--no-config", "--dump-graph", str(dot), str(FIXTURES / "atom")]
    )
    assert code == 1
    assert f"call graph written to {dot}" in capsys.readouterr().err
    text = dot.read_text()
    assert "digraph" in text
    assert "may-yield" in text
    assert "lost_update" in text  # calls yield_point() -> in the may-yield set


def test_cli_unknown_rule_is_usage_error(capsys):
    code = lint_main(["--no-config", "--rules", "NOPE", str(FIXTURES / "clean.py")])
    assert code == 2
    assert "unknown rule" in capsys.readouterr().err


def test_cli_rules_subset(capsys):
    code = lint_main(
        ["--no-config", "--rules", "EXC", str(FIXTURES / "det_wallclock.py")]
    )
    assert code == 0


def test_cli_write_and_use_baseline(tmp_path, capsys):
    baseline = tmp_path / "baseline.json"
    target = str(FIXTURES / "det_wallclock.py")
    assert lint_main(["--no-config", "--write-baseline", str(baseline), target]) == 0
    capsys.readouterr()
    code = lint_main(["--no-config", "--baseline", str(baseline), target])
    out = capsys.readouterr().out
    assert code == 0
    assert "baselined" in out


# -- the meta-test: this repository is clean --------------------------------


def test_src_repro_is_clean_under_shipped_config():
    config = load_config(REPO_ROOT)
    assert config.paths == ("src/repro",)
    assert config.baseline is None, "the tree must stay baseline-free"
    result = lint_paths(None, config)
    assert result.findings == [], "\n".join(
        f.render() for f in result.findings
    )
    assert result.files_checked > 90
