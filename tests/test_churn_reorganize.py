"""Tests for update churn and dump-and-reload reorganization."""

from __future__ import annotations

import pytest

from repro.bench import ExperimentRunner
from repro.cluster import load_derby
from repro.cluster.churn import register_new_patients
from repro.cluster.reorganize import dump_and_reload, dump_logical
from repro.derby import DerbyConfig, generate
from repro.derby.config import Clustering
from repro.simtime import CostParams


def comp_config(**overrides) -> DerbyConfig:
    return DerbyConfig(
        n_providers=20,
        n_patients=1000,
        clustering=Clustering.COMPOSITION,
        scale=0.002,
        params=CostParams().scaled(0.002),
        **overrides,
    )


class TestChurn:
    def test_registration_extends_everything(self):
        derby = load_derby(comp_config())
        report = register_new_patients(derby, 60)
        assert report.new_patients == 60
        assert len(derby.patient_rids) == 1060
        assert len(derby.patients) == 1060
        assert derby.by_mrn.entry_count == 1060
        assert derby.by_num.entry_count == 1060

    def test_new_patients_query_correctly(self):
        derby = load_derby(comp_config())
        register_new_patients(derby, 40)
        om = derby.db.manager
        # Every new patient is reachable through the mrn index and
        # back-references a real provider.
        for mrn in range(1001, 1041):
            (rid,) = derby.by_mrn.lookup(mrn)
            owner = om.get_attr_at(rid, "primary_care_provider")
            assert om.get_attr_at(owner, "upin") >= 1

    def test_new_patients_join_in_clients_sets(self):
        derby = load_derby(comp_config())
        register_new_patients(derby, 30)
        db, om = derby.db, derby.db.manager
        members = set()
        for provider_rid in derby.provider_rids:
            handle = om.load(provider_rid)
            clients = om.get_attr(handle, "clients")
            om.unref(handle)
            members.update(db.iter_set_rids(clients))
        assert members == set(derby.patient_rids)

    def test_churn_fragments_composition_clustering(self):
        derby = load_derby(comp_config())
        runner = ExperimentRunner(derby)
        before = runner.run_join("NL", 90, 90).elapsed_s
        register_new_patients(derby, 500)  # +50% tail-appended patients
        after = runner.run_join("NL", 90, 90).elapsed_s
        assert after > before * 1.1

    def test_negative_count_rejected(self):
        derby = load_derby(comp_config())
        with pytest.raises(ValueError):
            register_new_patients(derby, -1)


class TestDumpReload:
    def test_dump_recovers_logical_content(self):
        config = comp_config()
        derby = load_derby(config)
        logical = generate(config)
        dumped = dump_logical(derby)
        assert [p.upin for p in dumped.providers] == [
            p.upin for p in logical.providers
        ]
        assert [p.mrn for p in dumped.patients] == [
            p.mrn for p in logical.patients
        ]
        assert [p.random_integer for p in dumped.patients] == [
            p.random_integer for p in logical.patients
        ]
        assert [p.patient_idxs for p in dumped.providers] == [
            p.patient_idxs for p in logical.providers
        ]

    def test_dump_charges_io(self):
        derby = load_derby(comp_config())
        derby.start_cold_run()
        dump_logical(derby)
        assert derby.db.counters.disk_reads > 0

    def test_reload_preserves_query_answers(self):
        derby = load_derby(comp_config())
        register_new_patients(derby, 100)
        before = ExperimentRunner(derby).run_join("PHJ", 50, 50)
        fresh, __ = dump_and_reload(derby)
        after = ExperimentRunner(fresh).run_join("PHJ", 50, 50)
        assert before.rows == after.rows  # same row count pre/post reload

    def test_reload_restores_navigation_performance(self):
        """The paper's maintenance advice, measured: churn degrades NL
        under composition clustering; dump-and-reload restores it."""
        derby = load_derby(comp_config())
        runner = ExperimentRunner(derby)
        pristine = runner.run_join("NL", 90, 90).elapsed_s
        register_new_patients(derby, 500)
        fragmented = runner.run_join("NL", 90, 90).elapsed_s
        fresh, report = dump_and_reload(derby)
        restored = ExperimentRunner(fresh).run_join("NL", 90, 90).elapsed_s
        assert fragmented > pristine
        # The reloaded database has 1.5x the data, so compare per-row.
        assert restored < fragmented
        assert report.dump_seconds > 0
        assert report.reload_seconds > 0

    def test_reload_can_convert_clustering(self):
        derby = load_derby(comp_config())
        fresh, __ = dump_and_reload(derby, clustering=Clustering.CLASS)
        assert fresh.config.clustering is Clustering.CLASS
        assert fresh.db.has_file("providers")
        # Same answers under the new organization.
        a = ExperimentRunner(derby).run_join("PHJ", 30, 30)
        b = ExperimentRunner(fresh).run_join("PHJ", 30, 30)
        assert a.rows == b.rows
