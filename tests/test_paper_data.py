"""Unit tests for the paper-agreement scoring machinery."""

from __future__ import annotations

import pytest

from repro.bench.paper_data import (
    PAPER_FIG11,
    PAPER_FIG12,
    PAPER_FIG14,
    PAPER_FIG15_WINNERS,
    PAPER_FIGURES,
    score_against_paper,
)
from repro.bench.runner import JoinMeasurement
from repro.bench.workloads import SELECTIVITY_GRID
from repro.simtime import MeterSnapshot


def fake_measurements(cells: dict) -> list[JoinMeasurement]:
    out = []
    for (sp, sv), algos in cells.items():
        for algo, seconds in algos.items():
            out.append(
                JoinMeasurement(
                    algo=algo,
                    clustering="class",
                    sel_patients=sp,
                    sel_providers=sv,
                    elapsed_s=seconds,
                    rows=1,
                    meters=MeterSnapshot(),
                    breakdown={},
                )
            )
    return out


class TestPaperData:
    def test_tables_cover_the_grid(self):
        for name, figure in PAPER_FIGURES.items():
            assert set(figure) == set(SELECTIVITY_GRID), name
            for cell in figure.values():
                assert set(cell) == {"NL", "NOJOIN", "PHJ", "CHJ"}

    def test_figure12_90_90_order_is_the_papers(self):
        cell = PAPER_FIG12[(90, 90)]
        assert sorted(cell, key=cell.get) == ["NOJOIN", "NL", "PHJ", "CHJ"]

    def test_figure14_navigation_wins(self):
        for cell, algos in PAPER_FIG14.items():
            assert min(algos, key=algos.get) in ("NL", "NOJOIN"), cell

    def test_figure15_covers_24_cells(self):
        count = sum(
            len(by_org)
            for cells in PAPER_FIG15_WINNERS.values()
            for by_org in cells.values()
        )
        assert count == 24


class TestScoring:
    def test_perfect_reproduction_scores_perfectly(self):
        """Feeding the paper's own numbers (scaled by any constant) must
        score 4/4 winners, rho 1.0, zero ratio error."""
        scaled = {
            cell: {a: t / 100 for a, t in algos.items()}
            for cell, algos in PAPER_FIG11.items()
        }
        table, score = score_against_paper("fig11", fake_measurements(scaled))
        assert score.winners_matched == 4
        assert score.mean_spearman == pytest.approx(1.0)
        assert score.mean_log_ratio_error == pytest.approx(0.0, abs=1e-9)
        assert len(table.rows) == 16

    def test_inverted_ranking_scores_negatively(self):
        inverted = {
            cell: {a: 1.0 / t for a, t in algos.items()}
            for cell, algos in PAPER_FIG11.items()
        }
        __, score = score_against_paper("fig11", fake_measurements(inverted))
        assert score.winners_matched == 0
        assert score.mean_spearman < 0

    def test_missing_algorithm_rejected(self):
        partial = {
            cell: {a: t for a, t in algos.items() if a != "NL"}
            for cell, algos in PAPER_FIG11.items()
        }
        with pytest.raises(ValueError):
            score_against_paper("fig11", fake_measurements(partial))
