"""Tests for the benchmark harness: runner, tables, figure builders."""

from __future__ import annotations

import pytest

from repro.bench import ExperimentRunner, Table
from repro.bench.figures import (
    PAPER_ALGORITHMS,
    extensions_figure,
    figure4_rids_vs_handles,
    figure6,
    figure7,
    figure9,
    figure10,
    figure15,
    handle_modes_figure,
    join_figure,
)
from repro.bench.workloads import SELECTIVITY_GRID, tree_query_text
from repro.cluster import load_derby
from repro.derby import DerbyConfig
from repro.derby.config import Clustering
from repro.errors import BenchError
from repro.simtime import CostParams
from repro.stats import StatsDatabase


@pytest.fixture(scope="module")
def derby():
    cfg = DerbyConfig(
        n_providers=30,
        n_patients=900,
        clustering=Clustering.CLASS,
        scale=0.002,
        params=CostParams().scaled(0.002),
    )
    return load_derby(cfg)


@pytest.fixture()
def runner(derby):
    return ExperimentRunner(derby)


class TestTable:
    def test_render(self):
        table = Table("T", ["a", "bee"])
        table.add(1, 2.5)
        table.note("a note")
        text = table.render()
        assert "T" in text
        assert "a note" in text
        assert "2.50" in text

    def test_row_arity_checked(self):
        table = Table("T", ["a"])
        with pytest.raises(ValueError):
            table.add(1, 2)


class TestRunner:
    def test_run_join_measures(self, runner):
        m = runner.run_join("PHJ", 10, 10)
        assert m.algo == "PHJ"
        assert m.elapsed_s > 0
        assert m.rows > 0
        assert m.meters.disk_reads > 0
        assert "io" in m.breakdown

    def test_cold_runs_are_reproducible(self, runner):
        a = runner.run_join("NOJOIN", 10, 90)
        b = runner.run_join("NOJOIN", 10, 90)
        assert a.elapsed_s == pytest.approx(b.elapsed_s)
        assert a.meters.disk_reads == b.meters.disk_reads

    def test_unknown_algorithm(self, runner):
        with pytest.raises(BenchError):
            runner.run_join("ZIGZAG", 10, 10)

    def test_unknown_selection_method(self, runner):
        with pytest.raises(BenchError):
            runner.run_selection("hash", 10)

    def test_selection_measures(self, runner):
        m = runner.run_selection("sorted-index", 30)
        assert m.rows == pytest.approx(270, abs=30)
        assert m.page_reads > 0

    def test_stats_recorded(self, derby):
        stats = StatsDatabase()
        runner = ExperimentRunner(derby, stats)
        runner.run_join("PHJ", 10, 10)
        runner.run_selection("scan", 10)
        rows = stats.rows()
        assert len(rows) == 2
        assert {r.algo for r in rows} == {"PHJ", "select/scan"}

    def test_grid_runs_all(self, runner):
        ms = runner.run_join_grid(("PHJ", "CHJ"), ((10, 10), (90, 90)))
        assert len(ms) == 4


class TestWorkloads:
    def test_tree_query_text(self, derby):
        text = tree_query_text(derby.config, 10, 90)
        assert "pa.mrn <" in text and "p.upin <" in text

    def test_grid_is_the_papers(self):
        assert SELECTIVITY_GRID == ((10, 10), (10, 90), (90, 10), (90, 90))


class TestFigures:
    def test_figure6_shape(self, runner):
        table = figure6(runner)
        assert len(table.rows) == 7
        # No-index page count is selectivity-independent.
        no_index_pages = {row[3] for row in table.rows}
        assert len(no_index_pages) == 1
        # Unclustered index reads more pages than the scan at 90%.
        last = table.rows[-1]
        assert last[1] > last[3]

    def test_figure7_shape(self, runner):
        table = figure7(runner)
        assert len(table.rows) == 4
        # Sorted index scan strictly beats no-index at low selectivity.
        assert table.rows[0][1] < table.rows[0][2]

    def test_figure9_decomposition_sums_to_total(self, runner):
        table = figure9(runner)
        *components, total = table.rows
        for col in (1, 2):
            assert sum(row[col] for row in components) == pytest.approx(
                total[col], rel=0.01
            )
        handles = next(r for r in table.rows if "Handle" in r[0])
        # Even at 90% the standard scan pays more handle traffic...
        assert handles[1] > handles[2]
        # ...and at 10% selectivity the gap is large (the paper's point:
        # handles for the whole collection vs only selected elements).
        low_sel = figure9(runner, selectivity_pct=10)
        handles10 = next(r for r in low_sel.rows if "Handle" in r[0])
        assert handles10[1] > 5 * handles10[2]

    def test_figure10_matches_paper_exactly(self):
        table = figure10()
        sizes = [row[5] for row in table.rows]
        paper = [0.0128, 0.1152, 6.4, 57.6, 1.72, 14.52, 62.4, 81.6]
        for ours, theirs in zip(sizes, paper):
            assert ours == pytest.approx(theirs, rel=0.001)

    def test_join_figure_ranks_each_cell(self, runner):
        table, measurements = join_figure(
            runner, "test", algorithms=("PHJ", "NOJOIN"), grid=((10, 10),)
        )
        assert len(table.rows) == 2
        assert table.rows[0][3] == pytest.approx(1.0)  # best ratio is 1
        assert table.rows[1][4] >= table.rows[0][4]
        assert len(measurements) == 2

    def test_figure15_picks_winners(self, runner):
        __, ms = join_figure(
            runner, "t", algorithms=PAPER_ALGORITHMS, grid=((10, 10),)
        )
        table = figure15({"1:1000": {"class": ms}})
        row = table.rows[0]
        assert row[5] in PAPER_ALGORITHMS      # class winner
        assert row[3] == "-"                   # random org not provided

    def test_figure4_rids_cheaper_than_handles_when_memory_tight(self, runner):
        table = figure4_rids_vs_handles(runner, selectivity_pct=90)
        handles_row, rids_row = table.rows
        assert handles_row[0] == "Handles"
        assert handles_row[2] > rids_row[2]  # bigger table

    def test_handle_modes_ablation(self, runner):
        table = handle_modes_figure(runner, selectivity_pct=60)
        by_mode = {row[0]: row[1] for row in table.rows}
        # Full handles are the most expensive regime for the scan.
        assert by_mode["full"] >= max(v for k, v in by_mode.items() if k != "full")

    def test_extensions_figure_includes_smj_and_hybrid(self, runner):
        table, __ = extensions_figure(runner)
        algos = {row[2] for row in table.rows}
        assert {"SMJ", "PHJ-HYBRID"} <= algos
