"""End-to-end integration tests across the whole stack.

These exercise the complete pipeline — generation, loading, indexing,
OQL planning and execution, algorithm equivalence, stats recording and
cost-model fitting — in one place, on one shared mid-size database per
clustering.
"""

from __future__ import annotations

import pytest

from repro.analysis import fit_cost_model
from repro.bench import ExperimentRunner
from repro.bench.figures import PAPER_ALGORITHMS
from repro.cluster import load_derby
from repro.derby import DerbyConfig, generate
from repro.derby.config import Clustering
from repro.oql import Catalog, OQLEngine
from repro.simtime import CostParams
from repro.stats import StatsDatabase


SCALE = 0.002


def config_for(clustering: Clustering) -> DerbyConfig:
    return DerbyConfig(
        n_providers=50,
        n_patients=1500,
        clustering=clustering,
        scale=SCALE,
        params=CostParams().scaled(SCALE),
    )


@pytest.fixture(scope="module", params=list(Clustering), ids=lambda c: c.value)
def derby(request):
    return load_derby(config_for(request.param))


@pytest.fixture(scope="module")
def logical():
    # Logical content is clustering-independent.
    return generate(config_for(Clustering.CLASS))


class TestFullPipeline:
    def test_oql_equals_reference_for_every_clustering(self, derby, logical):
        engine = OQLEngine(Catalog.from_derby(derby))
        k1 = derby.config.mrn_threshold(25)
        k2 = derby.config.upin_threshold(60)
        derby.start_cold_run()
        rows = engine.execute(
            "select tuple(n: p.name, a: pa.age) "
            "from p in Providers, pa in p.clients "
            f"where pa.mrn < {k1} and p.upin < {k2}"
        )
        expected = sorted(
            (prov.name, logical.patients[j].age)
            for prov in logical.providers
            if prov.upin < k2
            for j in prov.patient_idxs
            if logical.patients[j].mrn < k1
        )
        assert sorted(rows) == expected

    def test_all_algorithms_equal_under_every_clustering(self, derby):
        runner = ExperimentRunner(derby)
        reference = None
        for algo in PAPER_ALGORITHMS:
            m = runner.run_join(algo, 30, 70)
            if reference is None:
                reference = m.rows
            assert m.rows == reference, algo

    def test_selection_results_identical_across_access_paths(
        self, derby, logical
    ):
        runner = ExperimentRunner(derby)
        k = derby.config.num_threshold(40)
        expected = sorted(p.age for p in logical.patients if p.num > k)
        for method in ("scan", "index", "sorted-index"):
            m = runner.run_selection(method, 40)
            assert m.rows == len(expected), method

    def test_two_loads_are_deterministic(self, derby):
        other = load_derby(derby.config)
        a = ExperimentRunner(derby).run_join("PHJ", 10, 90)
        b = ExperimentRunner(other).run_join("PHJ", 10, 90)
        assert a.elapsed_s == pytest.approx(b.elapsed_s)
        assert a.meters.disk_reads == b.meters.disk_reads
        assert a.rows == b.rows

    def test_stats_and_analysis_round_trip(self, derby):
        stats = StatsDatabase()
        runner = ExperimentRunner(derby, stats)
        runs = []
        for sel in ((10, 10), (90, 90), (30, 70)):
            for algo in PAPER_ALGORITHMS:
                runs.append(runner.run_join(algo, *sel))
        assert len(stats) == len(runs)
        fit = fit_cost_model(runs)
        assert fit.r_squared > 0.9
        best = stats.best_algorithm(derby.config.clustering.value, 10, 10)
        assert best is not None
        assert best.algo in PAPER_ALGORITHMS
