"""Tests for the parameter-sweep tooling."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.bench import ExperimentRunner
from repro.bench.sweeps import (
    cache_size_sweep,
    find_crossover,
    memory_pressure_sweep,
    selection_method_sweep,
    selectivity_sweep,
)
from repro.cluster import load_derby
from repro.derby import DerbyConfig
from repro.derby.config import Clustering
from repro.errors import BenchError
from repro.simtime import CostParams


@pytest.fixture(scope="module")
def derby():
    # The patients file (~40 pages) must exceed the scaled client cache
    # (~16 pages) so random index fetches actually pay re-reads.
    cfg = DerbyConfig(
        n_providers=30,
        n_patients=2400,
        clustering=Clustering.CLASS,
        scale=0.002,
        params=CostParams().scaled(0.002),
    )
    return load_derby(cfg)


@pytest.fixture()
def runner(derby):
    return ExperimentRunner(derby)


class TestSelectivitySweep:
    def test_curves_cover_grid(self, runner):
        points = selectivity_sweep(runner, ("PHJ", "NL"), (10, 50, 90))
        assert len(points) == 6
        assert {p.label for p in points} == {"PHJ", "NL"}

    def test_time_monotone_in_selectivity_for_phj(self, runner):
        points = selectivity_sweep(runner, ("PHJ",), (10, 30, 50, 70, 90))
        times = [p.elapsed_s for p in points]
        assert times == sorted(times)


class TestSelectionSweepAndCrossover:
    def test_scan_time_grows_only_through_results(self, runner):
        points = selection_method_sweep(runner, ("scan",), (1, 50, 99))
        reads = {p.page_reads for p in points}
        assert len(reads) == 1  # selectivity-independent I/O
        times = [p.elapsed_s for p in points]
        assert times == sorted(times)

    def test_figure6_crossover_between_1_and_10_percent(self, runner):
        """The unsorted unclustered index crosses the scan in the low
        single digits (the paper brackets it between 1 and 5%)."""
        crossover = find_crossover(runner, "index", "scan", 0.2, 20.0)
        assert 0.5 < crossover < 10.0

    def test_unbracketed_crossover_raises(self, runner):
        with pytest.raises(BenchError):
            # sorted-index beats the scan at both ends here: no crossing.
            find_crossover(runner, "sorted-index", "scan", 1.0, 30.0)


class TestCacheSweep:
    def test_smaller_cache_is_never_faster(self, derby):
        def make_runner(fraction: float) -> ExperimentRunner:
            memory = replace(
                derby.config.params.memory,
                client_cache_bytes=max(
                    4096,
                    int(derby.config.params.memory.client_cache_bytes * fraction),
                ),
            )
            derby.db.system.memory = memory
            derby.db.system.client_cache.capacity_pages = max(
                1, memory.client_cache_pages
            )
            return ExperimentRunner(derby)

        points = cache_size_sweep(make_runner, (0.1, 0.5, 1.0))
        times = [p.elapsed_s for p in points]
        assert times[0] >= times[-1]
        # Restore the full-size cache for other tests.
        make_runner(1.0)


class TestMemoryPressureSweep:
    def test_shrinking_budget_hurts_hash_joins(self, runner):
        points = memory_pressure_sweep(
            runner, (1.0, 0.05, 0.002), algo="PHJ"
        )
        assert points[0].elapsed_s <= points[-1].elapsed_s
        # With a tiny budget the join must have swapped.
        assert points[-1].page_reads > 0  # swap_faults recorded in field

    def test_budget_restored_after_sweep(self, runner, derby):
        before = derby.db.params.memory.query_memory_bytes
        memory_pressure_sweep(runner, (0.01,))
        assert derby.db.params.memory.query_memory_bytes == before
