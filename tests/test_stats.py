"""Tests for the Figure 3 stats database and its exports."""

from __future__ import annotations

import pytest

from repro.simtime import CounterSet, MeterSnapshot
from repro.stats import StatsDatabase, build_stats_schema, to_csv, to_gnuplot


def snapshot(**overrides) -> MeterSnapshot:
    base = dict(
        disk_reads=100,
        server_to_client=120,
        rpcs=120,
        rpc_bytes=120 * 4096,
        client_faults=120,
        client_hits=380,
        server_faults=100,
        server_hits=20,
    )
    base.update(overrides)
    return MeterSnapshot(**base)


class TestSchema:
    def test_figure3_classes_present(self):
        schema = build_stats_schema()
        for name in ("Stat", "Query", "Extent", "System", "Association"):
            assert name in schema

    def test_stat_attributes(self):
        schema = build_stats_schema()
        stat = schema.cls("Stat")
        for attr in (
            "numtest", "query", "database", "cluster", "algo", "system",
            "CCPagefaults", "ElapsedTime", "RPCsnumber", "RPCstotalsize",
            "D2SCreadpages", "SC2CCreadpages", "CCMissrate", "SCMissrate",
        ):
            assert stat.has_attribute(attr)


class TestMeterSnapshot:
    def test_miss_rates(self):
        snap = snapshot()
        assert snap.client_miss_rate == pytest.approx(0.24)
        assert snap.server_miss_rate == pytest.approx(100 / 120)

    def test_subtraction(self):
        a = snapshot(disk_reads=100)
        b = snapshot(disk_reads=40)
        assert (a - b).disk_reads == 60

    def test_counterset_snapshot(self):
        counters = CounterSet()
        counters.disk_reads = 7
        snap = counters.snapshot()
        assert snap.disk_reads == 7
        counters.reset()
        assert counters.disk_reads == 0


class TestStatsDatabase:
    def test_record_and_read_back(self):
        stats = StatsDatabase()
        stats.record_experiment(
            algo="PHJ",
            cluster="class",
            elapsed_s=89.83,
            meters=snapshot(),
            text="select ...",
            selectivity=10,
            selectivity_parents=10,
        )
        rows = stats.rows()
        assert len(rows) == 1
        row = rows[0]
        assert row.algo == "PHJ"
        assert row.cluster == "class"
        assert row.elapsed_s == pytest.approx(89.83)
        assert row.d2sc_pages == 100
        assert row.cc_missrate == 24
        assert row.cold

    def test_filtering(self):
        stats = StatsDatabase()
        for algo, sel in (("PHJ", 10), ("CHJ", 10), ("PHJ", 90)):
            stats.record_experiment(
                algo=algo,
                cluster="class",
                elapsed_s=1.0,
                meters=snapshot(),
                selectivity=sel,
            )
        assert len(stats.rows(algo="PHJ")) == 2
        assert len(stats.rows(selectivity=10)) == 2
        assert len(stats.rows(algo="PHJ", selectivity=90)) == 1
        assert len(stats.rows(cluster="composition")) == 0

    def test_best_algorithm(self):
        stats = StatsDatabase()
        for algo, seconds in (("PHJ", 89.8), ("CHJ", 101.0), ("NL", 1418.0)):
            stats.record_experiment(
                algo=algo,
                cluster="class",
                elapsed_s=seconds,
                meters=snapshot(),
                selectivity=10,
                selectivity_parents=10,
            )
        best = stats.best_algorithm("class", 10, 10)
        assert best is not None and best.algo == "PHJ"
        assert stats.best_algorithm("random", 10, 10) is None

    def test_numtest_increments(self):
        stats = StatsDatabase()
        stats.record_experiment("A", "c", 1.0, snapshot())
        stats.record_experiment("B", "c", 2.0, snapshot())
        assert [r.numtest for r in stats.rows()] == [1, 2]

    def test_many_stats_persist_across_cold_restart(self):
        stats = StatsDatabase()
        for i in range(50):
            stats.record_experiment("A", "c", float(i), snapshot())
        stats.db.restart_cold()
        assert len(stats.rows()) == 50

    def test_record_extent(self):
        stats = StatsDatabase()
        rid = stats.record_extent("Patient", 2_000_000)
        record, class_def = stats.db.manager.read_record(rid)
        decoded = stats.db.manager.codec(class_def).decode(record)
        assert decoded["classname"] == "Patient"
        assert decoded["size"] == 2_000_000


class TestExport:
    def make_rows(self):
        stats = StatsDatabase()
        for algo, sel, seconds in (
            ("PHJ", 10, 89.8),
            ("PHJ", 90, 925.0),
            ("NL", 10, 1418.0),
        ):
            stats.record_experiment(
                algo=algo, cluster="class", elapsed_s=seconds,
                meters=snapshot(), selectivity=sel,
            )
        return stats.rows()

    def test_csv(self):
        csv = to_csv(self.make_rows())
        lines = csv.strip().splitlines()
        assert lines[0].startswith("numtest,algo,cluster")
        assert len(lines) == 4
        assert "PHJ" in lines[1]

    def test_gnuplot(self):
        dat = to_gnuplot(self.make_rows())
        assert "# series: NL" in dat
        assert "# series: PHJ" in dat
        # PHJ block has two points sorted by selectivity.
        phj_block = dat.split("# series: PHJ\n")[1].split("\n\n")[0]
        xs = [float(line.split()[0]) for line in phj_block.strip().splitlines()]
        assert xs == sorted(xs)
